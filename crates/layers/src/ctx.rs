//! Execution context: thread team, schedule, reduction mode, phase.

use crate::strategy::LayerStrategy;
use crate::workspace::Workspace;
use mmblas::Scalar;
use omprt::{Schedule, ThreadTeam};

/// Training vs. inference phase (affects dropout and data augmentation).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Gradient-producing pass.
    Train,
    /// Evaluation pass: dropout disabled, no augmentation.
    Test,
}

/// Strategy for merging privatized weight-gradient buffers (paper §3.2.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReductionMode {
    /// The paper's choice: one privatized buffer per thread, merged with an
    /// `ordered` construct in thread-id order. Deterministic for a fixed
    /// thread count; the 1-thread run defines the sequential reference.
    Ordered,
    /// Our extension: accumulation into a *fixed* number of canonical groups
    /// (independent of the thread count), merged in group order. Bitwise
    /// identical results for **any** team size `<=` the group count.
    Canonical {
        /// Number of accumulation groups (must be >= the largest team size
        /// used; 16 matches the paper's machine).
        groups: usize,
    },
    /// Merge privatized buffers in completion order under a lock — the
    /// fastest option, but nondeterministic (the paper notes developers
    /// avoid it during tuning/debugging).
    Unordered,
}

impl ReductionMode {
    /// Number of privatized accumulation slots for a team of `nthreads`.
    pub fn slots(&self, nthreads: usize) -> usize {
        match self {
            ReductionMode::Ordered | ReductionMode::Unordered => nthreads,
            ReductionMode::Canonical { groups } => (*groups).max(nthreads),
        }
    }

    /// `true` if the merge must use the ordered construct.
    pub fn is_ordered(&self) -> bool {
        !matches!(self, ReductionMode::Unordered)
    }
}

/// Everything a layer pass needs to execute: the parallel machine
/// (team + schedule), the gradient-reduction policy, shared scratch space,
/// and the phase/iteration for stateful layers.
pub struct ExecCtx<'a, S: Scalar = f32> {
    /// The thread team (`#pragma omp parallel`); size 1 = sequential.
    pub team: &'a ThreadTeam,
    /// Worksharing loop schedule (static, as in the paper, by default).
    pub schedule: Schedule,
    /// Weight-gradient reduction policy.
    pub reduction: ReductionMode,
    /// Shared per-thread/per-slot scratch buffers.
    pub workspace: &'a Workspace<S>,
    /// Train or test.
    pub phase: Phase,
    /// Global iteration counter (seeds dropout masks deterministically).
    pub iteration: u64,
    /// How this layer's coalesced loop is split (from the active plan;
    /// sample-split when no plan is loaded).
    pub strategy: LayerStrategy,
}

impl<'a, S: Scalar> ExecCtx<'a, S> {
    /// Context with the paper's defaults: static schedule, ordered
    /// reduction, training phase.
    pub fn new(team: &'a ThreadTeam, workspace: &'a Workspace<S>) -> Self {
        Self {
            team,
            schedule: Schedule::Static,
            reduction: ReductionMode::Ordered,
            workspace,
            phase: Phase::Train,
            iteration: 0,
            strategy: LayerStrategy::SampleSplit,
        }
    }

    /// Builder-style: set the reduction mode.
    pub fn with_reduction(mut self, r: ReductionMode) -> Self {
        self.reduction = r;
        self
    }

    /// Builder-style: set the schedule.
    pub fn with_schedule(mut self, s: Schedule) -> Self {
        self.schedule = s;
        self
    }

    /// Builder-style: set the phase.
    pub fn with_phase(mut self, p: Phase) -> Self {
        self.phase = p;
        self
    }

    /// Builder-style: set the layer's parallelization strategy.
    pub fn with_strategy(mut self, s: LayerStrategy) -> Self {
        self.strategy = s;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slot_counts() {
        assert_eq!(ReductionMode::Ordered.slots(4), 4);
        assert_eq!(ReductionMode::Unordered.slots(7), 7);
        assert_eq!(ReductionMode::Canonical { groups: 16 }.slots(4), 16);
        assert_eq!(ReductionMode::Canonical { groups: 8 }.slots(12), 12);
    }

    #[test]
    fn ordered_flags() {
        assert!(ReductionMode::Ordered.is_ordered());
        assert!(ReductionMode::Canonical { groups: 16 }.is_ordered());
        assert!(!ReductionMode::Unordered.is_ordered());
    }

    #[test]
    fn ctx_builders() {
        let team = ThreadTeam::new(1);
        let ws = Workspace::<f32>::empty();
        let ctx = ExecCtx::new(&team, &ws)
            .with_reduction(ReductionMode::Unordered)
            .with_schedule(Schedule::Guided)
            .with_phase(Phase::Test)
            .with_strategy(LayerStrategy::Replicate);
        assert_eq!(ctx.reduction, ReductionMode::Unordered);
        assert_eq!(ctx.schedule, Schedule::Guided);
        assert_eq!(ctx.phase, Phase::Test);
        assert_eq!(ctx.strategy, LayerStrategy::Replicate);
    }
}
