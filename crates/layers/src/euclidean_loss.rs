//! Euclidean (L2) loss — Caffe's `EuclideanLoss` layer:
//! `loss = 1/(2N) * sum_s ||x_s - t_s||^2` over bottoms `[predictions,
//! targets]`, used for regression heads.

use crate::ctx::ExecCtx;
use crate::drivers::{parallel_map_ordered_sum, parallel_segments};
use crate::profile::{LayerProfile, PassProfile};
use crate::Layer;
use blob::{Blob, Shape};
use mmblas::Scalar;

/// Caffe `EuclideanLoss` layer.
pub struct EuclideanLossLayer<S: Scalar = f32> {
    name: String,
    batch: usize,
    dim: usize,
    _marker: std::marker::PhantomData<S>,
}

impl<S: Scalar> EuclideanLossLayer<S> {
    /// New Euclidean-loss layer.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            batch: 0,
            dim: 0,
            _marker: std::marker::PhantomData,
        }
    }
}

impl<S: Scalar> Layer<S> for EuclideanLossLayer<S> {
    fn name(&self) -> &str {
        &self.name
    }

    fn layer_type(&self) -> &'static str {
        "EuclideanLoss"
    }

    fn is_loss(&self) -> bool {
        true
    }

    fn setup(&mut self, bottom: &[&Blob<S>]) -> Vec<Shape> {
        assert_eq!(bottom.len(), 2, "EuclideanLoss: predictions + targets");
        assert_eq!(
            bottom[0].count(),
            bottom[1].count(),
            "EuclideanLoss: shape mismatch"
        );
        self.batch = bottom[0].num();
        self.dim = bottom[0].sample_len();
        vec![Shape::from(vec![1usize])]
    }

    fn forward(&mut self, ctx: &ExecCtx<'_, S>, bottom: &[&Blob<S>], top: &mut [Blob<S>]) {
        let x = bottom[0].data();
        let t = bottom[1].data();
        let d = self.dim;
        let total = parallel_map_ordered_sum(ctx, self.batch, |s| {
            let mut acc = S::ZERO;
            for j in s * d..(s + 1) * d {
                let e = x[j] - t[j];
                acc += e * e;
            }
            acc
        });
        top[0].data_mut()[0] = total / (S::from_usize(2) * S::from_usize(self.batch.max(1)));
    }

    fn backward(&mut self, ctx: &ExecCtx<'_, S>, top: &[&Blob<S>], bottom: &mut [Blob<S>]) {
        // d loss / d x = (x - t) / N; d loss / d t = -(x - t) / N.
        let w = top[0].diff()[0] / S::from_usize(self.batch.max(1));
        let d = self.dim;
        let t = bottom[1].data().to_vec();
        {
            let (bdata, bdiff) = bottom[0].data_diff_mut();
            let bdata: &[S] = bdata;
            parallel_segments(ctx, bdiff, d, |s, dx| {
                for (j, v) in dx.iter_mut().enumerate() {
                    *v = w * (bdata[s * d + j] - t[s * d + j]);
                }
            });
        }
        // Target diff (negated), for symmetry with Caffe's propagate_down.
        let x: Vec<S> = bottom[0].data().to_vec();
        parallel_segments(ctx, bottom[1].diff_mut(), d, |s, dt| {
            for (j, v) in dt.iter_mut().enumerate() {
                *v = -w * (x[s * d + j] - t[s * d + j]);
            }
        });
    }

    fn profile(&self, bottom: &[&Blob<S>]) -> LayerProfile {
        let elem = std::mem::size_of::<S>() as f64;
        let d = self.dim as f64;
        LayerProfile {
            name: self.name.clone(),
            layer_type: "EuclideanLoss".to_string(),
            forward: PassProfile {
                coalesced_iters: self.batch,
                flops_per_iter: 3.0 * d,
                bytes_in_per_iter: 2.0 * d * elem,
                bytes_out_per_iter: elem,
                seq_flops: self.batch as f64,
                reduction_elems: 0,
            },
            backward: PassProfile {
                coalesced_iters: self.batch,
                flops_per_iter: 4.0 * d,
                bytes_in_per_iter: 2.0 * d * elem,
                bytes_out_per_iter: 2.0 * d * elem,
                seq_flops: 0.0,
                reduction_elems: 0,
            },
            batch: bottom[0].num(),
            out_bytes_per_sample: elem,
            sequential: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workspace::Workspace;
    use omprt::ThreadTeam;

    fn run(x: Vec<f64>, t: Vec<f64>, n: usize) -> (f64, Vec<f64>, Vec<f64>) {
        let d = x.len() / n;
        let mut l: EuclideanLossLayer<f64> = EuclideanLossLayer::new("l2");
        let bx: Blob<f64> = Blob::from_data([n, d], x);
        let bt: Blob<f64> = Blob::from_data([n, d], t);
        let shapes = l.setup(&[&bx, &bt]);
        let team = ThreadTeam::new(2);
        let ws = Workspace::<f64>::empty();
        let ctx = ExecCtx::new(&team, &ws);
        let mut tops = vec![Blob::new(shapes[0].clone())];
        l.forward(&ctx, &[&bx, &bt], &mut tops);
        let loss = tops[0].data()[0];
        tops[0].diff_mut()[0] = 1.0;
        let trefs: Vec<&Blob<f64>> = tops.iter().collect();
        let mut bots = vec![bx, bt];
        l.backward(&ctx, &trefs, &mut bots);
        (loss, bots[0].diff().to_vec(), bots[1].diff().to_vec())
    }

    #[test]
    fn loss_value_matches_formula() {
        // 2 samples of dim 2; errors (1,1) and (2,0).
        let (loss, _, _) = run(vec![1.0, 1.0, 2.0, 0.0], vec![0.0, 0.0, 0.0, 0.0], 2);
        assert!((loss - (2.0 + 4.0) / 4.0).abs() < 1e-12);
    }

    #[test]
    fn gradients_are_error_over_n() {
        let (_, dx, dt) = run(vec![3.0, 0.0], vec![1.0, 0.0], 1);
        assert_eq!(dx, vec![2.0, 0.0]);
        assert_eq!(dt, vec![-2.0, 0.0]);
    }

    #[test]
    fn zero_error_zero_everything() {
        let (loss, dx, _) = run(vec![1.0, 2.0], vec![1.0, 2.0], 1);
        assert_eq!(loss, 0.0);
        assert_eq!(dx, vec![0.0, 0.0]);
    }
}
