//! Property-based tests on layer invariants: parallel == sequential for
//! arbitrary shapes and thread counts, softmax normalization, pooling
//! bounds, activation derivatives vs finite differences.

use blob::Blob;
use layers::conv::{ConvConfig, ConvolutionLayer};
use layers::pooling::{PoolConfig, PoolMethod, PoolingLayer};
use layers::softmax::softmax_vec;
use layers::{ExecCtx, Filler, Layer, ReductionMode, ReluLayer, Workspace};
use omprt::ThreadTeam;
use proptest::prelude::*;

fn run_layer<L: Layer<f64>>(
    layer_of: impl Fn() -> L,
    shape: [usize; 4],
    data: &[f64],
    threads: usize,
) -> (Vec<f64>, Vec<f64>) {
    let mut l = layer_of();
    let bottom: Blob<f64> = Blob::from_data(shape, data.to_vec());
    let shapes = l.setup(&[&bottom]);
    let team = ThreadTeam::new(threads);
    let mode = ReductionMode::Canonical { groups: 16 };
    let ws = Workspace::new(threads, mode.slots(threads), l.workspace_request());
    let ctx = ExecCtx::new(&team, &ws).with_reduction(mode);
    let mut tops = vec![Blob::new(shapes[0].clone())];
    l.forward(&ctx, &[&bottom], &mut tops);
    for (i, v) in tops[0].diff_mut().iter_mut().enumerate() {
        *v = ((i % 11) as f64) * 0.1 - 0.5;
    }
    let trefs: Vec<&Blob<f64>> = tops.iter().collect();
    let mut bots = vec![bottom];
    l.backward(&ctx, &trefs, &mut bots);
    (tops[0].data().to_vec(), bots[0].diff().to_vec())
}

fn blob_data(count: usize, seed: u64) -> Vec<f64> {
    let mut rng = mmblas::Pcg32::seeded(seed);
    (0..count).map(|_| rng.uniform_range(-2.0, 2.0)).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn conv_parallel_equals_sequential(n in 1usize..4,
                                       c in 1usize..3,
                                       hw in 5usize..9,
                                       out_c in 1usize..4,
                                       threads in 2usize..5,
                                       seed in 0u64..500) {
        let shape = [n, c, hw, hw];
        let data = blob_data(n * c * hw * hw, seed);
        let mk = || {
            let mut cfg = ConvConfig::new(out_c, 3, 1, 1);
            cfg.seed = 99;
            ConvolutionLayer::<f64>::new("c", cfg)
        };
        let (y1, d1) = run_layer(mk, shape, &data, 1);
        let (yt, dt) = run_layer(mk, shape, &data, threads);
        prop_assert_eq!(y1, yt);
        prop_assert_eq!(d1, dt);
    }

    #[test]
    fn pooling_parallel_equals_sequential(n in 1usize..4,
                                          c in 1usize..4,
                                          hw in 4usize..10,
                                          max_mode in prop::bool::ANY,
                                          threads in 2usize..5,
                                          seed in 0u64..500) {
        let shape = [n, c, hw, hw];
        let data = blob_data(n * c * hw * hw, seed);
        let method = if max_mode { PoolMethod::Max } else { PoolMethod::Ave };
        let mk = || PoolingLayer::<f64>::new("p", PoolConfig { method, kernel: 2, pad: 0, stride: 2 });
        let (y1, d1) = run_layer(mk, shape, &data, 1);
        let (yt, dt) = run_layer(mk, shape, &data, threads);
        prop_assert_eq!(y1, yt);
        prop_assert_eq!(d1, dt);
    }

    #[test]
    fn max_pool_output_is_attained_and_bounding(n in 1usize..3, c in 1usize..3, hw in 4usize..8, seed in 0u64..300) {
        let shape = [n, c, hw, hw];
        let data = blob_data(n * c * hw * hw, seed);
        let mk = || PoolingLayer::<f64>::new("p", PoolConfig::max(2, 2));
        let (y, _) = run_layer(mk, shape, &data, 1);
        let max_in = data.iter().cloned().fold(f64::MIN, f64::max);
        let min_in = data.iter().cloned().fold(f64::MAX, f64::min);
        for &v in &y {
            prop_assert!(v <= max_in && v >= min_in);
            // Every output value is an actual input value.
            prop_assert!(data.contains(&v));
        }
    }

    #[test]
    fn relu_output_nonnegative_and_sparsifying(n in 1usize..4, len in 1usize..30, seed in 0u64..300) {
        let shape = [n, 1, 1, len];
        let data = blob_data(n * len, seed);
        let (y, _) = run_layer(|| ReluLayer::new("r"), shape, &data, 2);
        for (&v, &x) in y.iter().zip(&data) {
            prop_assert!(v >= 0.0);
            prop_assert_eq!(v, x.max(0.0));
        }
    }

    #[test]
    fn softmax_is_a_distribution(scores in proptest::collection::vec(-30.0f64..30.0, 1..20)) {
        let mut out = vec![0.0; scores.len()];
        softmax_vec(&scores, &mut out);
        let sum: f64 = out.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-9);
        prop_assert!(out.iter().all(|&p| (0.0..=1.0).contains(&p)));
        // Order-preserving.
        for i in 0..scores.len() {
            for j in 0..scores.len() {
                if scores[i] < scores[j] {
                    prop_assert!(out[i] <= out[j] + 1e-12);
                }
            }
        }
    }

    #[test]
    fn conv_gradient_of_sum_matches_all_ones_backprop(hw in 5usize..8, seed in 0u64..200) {
        // With top diff = 1 everywhere, d(sum of outputs)/d(bias_o) equals
        // the number of output pixels per channel.
        let mut cfg = ConvConfig::new(2, 3, 0, 1);
        cfg.seed = seed;
        cfg.weight_filler = Filler::Xavier;
        let mut l: ConvolutionLayer<f64> = ConvolutionLayer::new("c", cfg);
        let shape = [2usize, 1, hw, hw];
        let data = blob_data(2 * hw * hw, seed);
        let bottom: Blob<f64> = Blob::from_data(shape, data);
        let shapes = l.setup(&[&bottom]);
        let team = ThreadTeam::new(1);
        let ws = Workspace::new(1, 1, <ConvolutionLayer<f64> as Layer<f64>>::workspace_request(&l));
        let ctx = ExecCtx::new(&team, &ws);
        let mut tops = vec![Blob::<f64>::new(shapes[0].clone())];
        l.forward(&ctx, &[&bottom], &mut tops);
        mmblas::set(1.0, tops[0].diff_mut());
        let trefs: Vec<&Blob<f64>> = tops.iter().collect();
        let mut bots = vec![bottom];
        l.backward(&ctx, &trefs, &mut bots);
        let out_pix = (hw - 2) * (hw - 2);
        let expected = (2 * out_pix) as f64; // 2 samples
        for &db in l.params()[1].diff() {
            prop_assert!((db - expected).abs() < 1e-9);
        }
    }
}
