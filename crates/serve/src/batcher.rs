//! Dynamic micro-batching with bounded-queue backpressure.
//!
//! Clients submit single samples; worker threads (one per engine replica)
//! assemble them into micro-batches under a two-knob policy:
//!
//! - `max_batch` — never exceed the engine's batch capacity;
//! - `max_delay` — after the first request of a batch arrives, wait at
//!   most this long for stragglers before flushing a partial batch.
//!
//! Admission control is a bounded [`std::sync::mpsc::sync_channel`]: when
//! `queue_depth` requests are already waiting, `try_send` fails and the
//! client gets [`ServeError::Rejected`] immediately — memory stays bounded
//! no matter the offered load. Requests may carry a deadline; a worker
//! drops expired ones with [`ServeError::TimedOut`] instead of wasting a
//! batch slot on an answer nobody is waiting for.

use crate::engine::Engine;
use crate::metrics::{ServingMetrics, ServingReport};
use crate::ServeError;
use mmblas::Scalar;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError, SyncSender, TrySendError};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Micro-batch assembly policy.
#[derive(Debug, Clone, Copy)]
pub struct BatchPolicy {
    /// Straggler wait after the first request of a batch.
    pub max_delay: Duration,
    /// Admission-queue capacity; one more request than this is `Rejected`.
    pub queue_depth: usize,
}

impl Default for BatchPolicy {
    /// 2 ms assembly window over a 64-deep queue.
    fn default() -> Self {
        Self {
            max_delay: Duration::from_millis(2),
            queue_depth: 64,
        }
    }
}

/// One in-flight request: the sample, its timing, and the reply channel.
struct Request<S: Scalar> {
    input: Vec<S>,
    submitted: Instant,
    deadline: Option<Instant>,
    reply: SyncSender<Result<Vec<S>, ServeError>>,
}

/// A running inference service: engines, workers, queue, metrics.
pub struct Server<S: Scalar + Send + 'static = f32> {
    tx: SyncSender<Request<S>>,
    workers: Vec<JoinHandle<()>>,
    stop: Arc<AtomicBool>,
    metrics: Arc<ServingMetrics>,
    sample_len: usize,
}

impl<S: Scalar + Send + 'static> Server<S> {
    /// Start serving on the given engine replicas (one worker thread
    /// each). All engines must share a sample shape and batch capacity.
    pub fn start(engines: Vec<Engine<S>>, policy: BatchPolicy) -> Result<Self, ServeError> {
        let first = engines
            .first()
            .ok_or_else(|| ServeError::Build("need at least one engine".into()))?;
        let (sample_len, max_batch) = (first.sample_len(), first.max_batch());
        if engines
            .iter()
            .any(|e| e.sample_len() != sample_len || e.max_batch() != max_batch)
        {
            return Err(ServeError::Build(
                "engine replicas disagree on sample shape or batch capacity".into(),
            ));
        }
        if policy.queue_depth == 0 {
            return Err(ServeError::Build("queue_depth must be >= 1".into()));
        }
        let (tx, rx) = std::sync::mpsc::sync_channel::<Request<S>>(policy.queue_depth);
        let rx = Arc::new(Mutex::new(rx));
        let stop = Arc::new(AtomicBool::new(false));
        let metrics = Arc::new(ServingMetrics::default());
        let n_replicas = engines.len();
        metrics.set_replicas(n_replicas);
        let mut workers = Vec::with_capacity(n_replicas);
        let mut spawn_err = None;
        for (i, engine) in engines.into_iter().enumerate() {
            let rx = Arc::clone(&rx);
            let stop = Arc::clone(&stop);
            let worker_metrics = Arc::clone(&metrics);
            match std::thread::Builder::new()
                .name(format!("serve-worker-{i}"))
                .spawn(move || worker_loop(i, engine, rx, stop, worker_metrics, policy))
            {
                Ok(h) => workers.push(h),
                Err(e) => {
                    // A replica we cannot staff is a dead replica, not a
                    // fatal error — serve on whatever did spawn.
                    metrics.on_replica_dead(i);
                    spawn_err = Some(e);
                }
            }
        }
        if workers.is_empty() {
            return Err(ServeError::Build(format!(
                "could not spawn any serve worker: {}",
                spawn_err.map_or_else(|| "no engines".into(), |e| e.to_string())
            )));
        }
        Ok(Self {
            tx,
            workers,
            stop,
            metrics,
            sample_len,
        })
    }

    /// A cheap cloneable handle for submitting requests from other threads
    /// (the load generator's client side).
    pub fn client(&self) -> Client<S> {
        Client {
            tx: self.tx.clone(),
            metrics: Arc::clone(&self.metrics),
            sample_len: self.sample_len,
        }
    }

    /// Submit one sample and block for its output. See [`Client::infer`].
    pub fn infer(&self, input: &[S]) -> Result<Vec<S>, ServeError> {
        self.client().infer(input)
    }

    /// Submit with a deadline. See [`Client::infer_with_deadline`].
    pub fn infer_with_deadline(
        &self,
        input: &[S],
        deadline: Instant,
    ) -> Result<Vec<S>, ServeError> {
        self.client().infer_with_deadline(input, deadline)
    }

    /// Live metrics handle (snapshot any time with
    /// [`ServingMetrics::report`]).
    pub fn metrics(&self) -> Arc<ServingMetrics> {
        Arc::clone(&self.metrics)
    }

    /// Drain in-flight requests, stop the workers, and return the final
    /// report. Outstanding [`Client`] handles get [`ServeError::Closed`]
    /// (via a disconnected reply) for anything submitted after this.
    pub fn shutdown(self) -> ServingReport {
        self.stop.store(true, Ordering::SeqCst);
        // Dropping our sender closes the channel once all clients are gone;
        // workers also poll `stop` so they exit even while clients linger.
        drop(self.tx);
        for w in self.workers {
            let _ = w.join();
        }
        self.metrics.report()
    }
}

/// A cloneable request submitter.
pub struct Client<S: Scalar + Send + 'static = f32> {
    tx: SyncSender<Request<S>>,
    metrics: Arc<ServingMetrics>,
    sample_len: usize,
}

impl<S: Scalar + Send + 'static> Clone for Client<S> {
    fn clone(&self) -> Self {
        Self {
            tx: self.tx.clone(),
            metrics: Arc::clone(&self.metrics),
            sample_len: self.sample_len,
        }
    }
}

impl<S: Scalar + Send + 'static> Client<S> {
    /// Submit one sample and block until its output arrives (or the
    /// request is rejected / the server closes).
    pub fn infer(&self, input: &[S]) -> Result<Vec<S>, ServeError> {
        self.submit(input, None)
    }

    /// Like [`Client::infer`], but the request is dropped with
    /// [`ServeError::TimedOut`] if it is still queued at `deadline`.
    pub fn infer_with_deadline(
        &self,
        input: &[S],
        deadline: Instant,
    ) -> Result<Vec<S>, ServeError> {
        self.submit(input, Some(deadline))
    }

    fn submit(&self, input: &[S], deadline: Option<Instant>) -> Result<Vec<S>, ServeError> {
        if input.len() != self.sample_len {
            return Err(ServeError::BadInput(format!(
                "sample has {} values, server expects {}",
                input.len(),
                self.sample_len
            )));
        }
        if self.metrics.healthy_replicas() == 0 {
            // Every worker has died; nothing will ever drain the queue.
            return Err(ServeError::Closed);
        }
        let (reply_tx, reply_rx) = std::sync::mpsc::sync_channel(1);
        let req = Request {
            input: input.to_vec(),
            submitted: Instant::now(),
            deadline,
            reply: reply_tx,
        };
        // Count before sending so a worker's dequeue can never observe the
        // counter below zero; undo on the failure paths.
        self.metrics.on_enqueue();
        match self.tx.try_send(req) {
            Ok(()) => {}
            Err(TrySendError::Full(_)) => {
                self.metrics.on_dequeue();
                self.metrics.on_rejected();
                return Err(ServeError::Rejected);
            }
            Err(TrySendError::Disconnected(_)) => {
                self.metrics.on_dequeue();
                return Err(ServeError::Closed);
            }
        }
        reply_rx.recv().unwrap_or(Err(ServeError::Closed))
    }
}

/// One worker: pull a first request, assemble a batch within the policy
/// window, drop expired requests, run the engine, demux the outputs.
///
/// The engine run is wrapped in `catch_unwind`: a panicking replica
/// answers its in-flight batch with [`ServeError::Replica`] and retires —
/// it never takes the process (or the other replicas) down with it, and
/// the shared queue keeps draining through the survivors.
fn worker_loop<S: Scalar + Send + 'static>(
    replica: usize,
    mut engine: Engine<S>,
    rx: Arc<Mutex<Receiver<Request<S>>>>,
    stop: Arc<AtomicBool>,
    metrics: Arc<ServingMetrics>,
    policy: BatchPolicy,
) {
    // How long a worker waits for its *first* request before rechecking
    // the stop flag; bounds shutdown latency while clients still exist.
    const IDLE_POLL: Duration = Duration::from_millis(20);
    let max_batch = engine.max_batch();
    loop {
        // Phase 1: wait for the batch's first request. The receiver lock
        // is held only while waiting, never during inference, so other
        // replicas drain the queue while this one computes.
        let first = {
            let guard = rx.lock();
            match guard.recv_timeout(IDLE_POLL) {
                Ok(r) => r,
                Err(RecvTimeoutError::Timeout) => {
                    if stop.load(Ordering::SeqCst) {
                        return;
                    }
                    continue;
                }
                Err(RecvTimeoutError::Disconnected) => return,
            }
        };
        metrics.on_dequeue();
        let mut batch = vec![first];
        // Phase 2: straggler window — top up to max_batch or max_delay.
        let window_end = Instant::now() + policy.max_delay;
        while batch.len() < max_batch {
            let now = Instant::now();
            if now >= window_end {
                break;
            }
            let next = { rx.lock().recv_timeout(window_end - now) };
            match next {
                Ok(r) => {
                    metrics.on_dequeue();
                    batch.push(r);
                }
                Err(RecvTimeoutError::Timeout) => break,
                Err(RecvTimeoutError::Disconnected) => break,
            }
        }
        // Phase 3: shed expired requests.
        let now = Instant::now();
        let (live, dead): (Vec<_>, Vec<_>) = batch
            .into_iter()
            .partition(|r| r.deadline.is_none_or(|d| d > now));
        for r in dead {
            metrics.on_timed_out();
            let _ = r.reply.send(Err(ServeError::TimedOut));
        }
        if live.is_empty() {
            continue;
        }
        // Phase 4: run and demux. `live` stays outside the unwind boundary
        // so a panicking engine cannot drop the reply channels — every
        // in-flight request gets an explicit error instead of a hangup.
        let waits: Vec<Duration> = live.iter().map(|r| now - r.submitted).collect();
        metrics.on_batch(live.len(), &waits);
        let inputs: Vec<&[S]> = live.iter().map(|r| r.input.as_slice()).collect();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            net::faults::hit("serve.worker").map_err(|e| ServeError::Replica(e.to_string()))?;
            engine.infer_batch(&inputs)
        }));
        drop(inputs);
        match result {
            Ok(Ok(outputs)) => {
                let done = Instant::now();
                for (r, out) in live.into_iter().zip(outputs) {
                    metrics.on_completed(done - r.submitted);
                    let _ = r.reply.send(Ok(out));
                }
            }
            Ok(Err(e)) => {
                metrics.on_replica_error(replica);
                for r in live {
                    let _ = r.reply.send(Err(e.clone()));
                }
            }
            Err(panic) => {
                let msg = panic
                    .downcast_ref::<&str>()
                    .map(|s| (*s).to_string())
                    .or_else(|| panic.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "non-string panic payload".into());
                metrics.on_replica_error(replica);
                metrics.on_replica_dead(replica);
                let err = ServeError::Replica(format!("replica {replica} panicked: {msg}"));
                for r in live {
                    let _ = r.reply.send(Err(err.clone()));
                }
                // Retire: the engine state is suspect after an unwind.
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineConfig;
    use blob::Shape;
    use net::NetSpec;

    const TRAIN: &str = r#"
name: t
layer {
  name: d
  type: Data
  batch: 4
  top: data
  top: label
}
layer {
  name: ip
  type: InnerProduct
  num_output: 3
  seed: 5
  bottom: data
  top: ip
}
layer {
  name: loss
  type: SoftmaxWithLoss
  bottom: ip
  bottom: label
  top: prob
}
"#;

    fn engines(n: usize) -> Vec<Engine<f32>> {
        let spec = NetSpec::parse(TRAIN).unwrap();
        crate::engine::build_replicas(
            &spec,
            &Shape::from(vec![6usize]),
            &EngineConfig {
                max_batch: 4,
                n_threads: 1,
            },
            n,
            None,
        )
        .unwrap()
    }

    #[test]
    fn serves_concurrent_clients() {
        let server = Server::start(engines(2), BatchPolicy::default()).unwrap();
        let handles: Vec<_> = (0..8)
            .map(|i| {
                let client = server.client();
                std::thread::spawn(move || {
                    let x = [i as f32 * 0.1; 6];
                    client.infer(&x).unwrap()
                })
            })
            .collect();
        for h in handles {
            let out = h.join().unwrap();
            assert_eq!(out.len(), 3);
        }
        let report = server.shutdown();
        assert_eq!(report.completed, 8);
        assert_eq!(report.rejected, 0);
        assert!(report.n_batches >= 2, "two replicas, >= 2 batches");
    }

    #[test]
    fn rejects_wrong_sample_length() {
        let server = Server::start(engines(1), BatchPolicy::default()).unwrap();
        let e = server.infer(&[0.0; 5]).unwrap_err();
        assert!(matches!(e, ServeError::BadInput(_)));
        server.shutdown();
    }

    #[test]
    fn expired_deadline_times_out() {
        let server = Server::start(engines(1), BatchPolicy::default()).unwrap();
        // A deadline already in the past must come back TimedOut.
        let past = Instant::now() - Duration::from_millis(1);
        let e = server.infer_with_deadline(&[0.0; 6], past).unwrap_err();
        assert_eq!(e, ServeError::TimedOut);
        let report = server.shutdown();
        assert_eq!(report.timed_out, 1);
        assert_eq!(report.completed, 0);
    }
}
