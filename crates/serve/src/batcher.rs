//! Dynamic micro-batching with bounded-queue backpressure and a
//! self-healing replica pool.
//!
//! Clients submit single samples; worker threads (one per engine replica)
//! assemble them into micro-batches under a two-knob policy:
//!
//! - `max_batch` — never exceed the engine's batch capacity;
//! - `max_delay` — after the first request of a batch arrives, wait at
//!   most this long for stragglers before flushing a partial batch.
//!
//! Admission control is a bounded [`std::sync::mpsc::sync_channel`]: when
//! `queue_depth` requests are already waiting, `try_send` fails and the
//! client gets [`ServeError::Rejected`] immediately — memory stays bounded
//! no matter the offered load. Requests may carry a deadline; a worker
//! drops expired ones with [`ServeError::TimedOut`] instead of wasting a
//! batch slot on an answer nobody is waiting for.
//!
//! Replies travel in pooled [`OutputBuf`]s: the worker demuxes the
//! engine's flat output slice into buffers checked out of a shared
//! [`BufferPool`], and each buffer returns to the pool when the caller
//! drops it — the steady-state reply path performs no allocation.
//!
//! A server started with [`Server::start_supervised`] also runs a
//! supervisor thread: it watches the `healthy_replicas` gauge, rebuilds
//! dead engines from the [`EngineFactory`] (sharing the one decoded weight
//! copy — no snapshot re-read), and re-staffs their worker threads. The
//! [`SupervisorPolicy`] bounds restarts to `max_restarts` per sliding
//! `restart_window`; exhausting the budget means something is
//! systematically wrong, so the supervisor stands down and the server
//! keeps serving on the surviving replicas.

use crate::engine::{Engine, EngineFactory};
use crate::metrics::{ServingMetrics, ServingReport};
use crate::pool::{BufferPool, OutputBuf};
use crate::ServeError;
use mmblas::Scalar;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError, SyncSender, TrySendError};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Micro-batch assembly policy.
#[derive(Debug, Clone, Copy)]
pub struct BatchPolicy {
    /// Straggler wait after the first request of a batch.
    pub max_delay: Duration,
    /// Admission-queue capacity; one more request than this is `Rejected`.
    pub queue_depth: usize,
}

impl Default for BatchPolicy {
    /// 2 ms assembly window over a 64-deep queue.
    fn default() -> Self {
        Self {
            max_delay: Duration::from_millis(2),
            queue_depth: 64,
        }
    }
}

/// Restart discipline for the supervisor thread.
#[derive(Debug, Clone, Copy)]
pub struct SupervisorPolicy {
    /// Restarts allowed inside one sliding `restart_window`; the
    /// supervisor stands down when the budget is exhausted (a replica
    /// dying this often points at a systematic fault, not a blip).
    pub max_restarts: usize,
    /// Width of the sliding restart-budget window.
    pub restart_window: Duration,
    /// How often the supervisor scans the `healthy_replicas` gauge.
    pub poll: Duration,
}

impl Default for SupervisorPolicy {
    /// 5 restarts per 30 s window, scanned every 20 ms.
    fn default() -> Self {
        Self {
            max_restarts: 5,
            restart_window: Duration::from_secs(30),
            poll: Duration::from_millis(20),
        }
    }
}

/// How a finished request reaches its submitter: blocking callers wait on
/// a rendezvous channel; event-driven callers (the `rpc` readiness loop)
/// hand over a completion callback that the worker invokes in place of a
/// channel send — no thread parks waiting for the answer.
enum Responder<S: Scalar> {
    Channel(SyncSender<Result<OutputBuf<S>, ServeError>>),
    Callback(Box<dyn FnOnce(Result<OutputBuf<S>, ServeError>) + Send>),
}

impl<S: Scalar> Responder<S> {
    /// Deliver the outcome. A hung-up channel receiver is the caller's
    /// business (it already gave up); callbacks always run.
    fn respond(self, result: Result<OutputBuf<S>, ServeError>) {
        match self {
            Responder::Channel(tx) => {
                let _ = tx.send(result);
            }
            Responder::Callback(cb) => cb(result),
        }
    }
}

/// One in-flight request: the sample, its timing, and the reply path.
struct Request<S: Scalar> {
    input: Vec<S>,
    submitted: Instant,
    deadline: Option<Instant>,
    reply: Responder<S>,
}

/// Everything a worker thread needs besides its own engine; cloned once
/// per spawn so the supervisor can re-staff a replica with the same view.
struct WorkerShared<S: Scalar + Send + 'static> {
    rx: Arc<Mutex<Receiver<Request<S>>>>,
    stop: Arc<AtomicBool>,
    metrics: Arc<ServingMetrics>,
    pool: BufferPool<S>,
    policy: BatchPolicy,
}

impl<S: Scalar + Send + 'static> Clone for WorkerShared<S> {
    fn clone(&self) -> Self {
        Self {
            rx: Arc::clone(&self.rx),
            stop: Arc::clone(&self.stop),
            metrics: Arc::clone(&self.metrics),
            pool: self.pool.clone(),
            policy: self.policy,
        }
    }
}

/// Staff replica `i` with a worker thread running `engine`.
fn spawn_worker<S: Scalar + Send + 'static>(
    i: usize,
    engine: Engine<S>,
    shared: WorkerShared<S>,
) -> std::io::Result<JoinHandle<()>> {
    std::thread::Builder::new()
        .name(format!("serve-worker-{i}"))
        .spawn(move || worker_loop(i, engine, shared))
}

/// A running inference service: engines, workers, queue, metrics, and
/// (optionally) a supervisor re-staffing dead replicas.
pub struct Server<S: Scalar + Send + 'static = f32> {
    tx: SyncSender<Request<S>>,
    /// Shared with the supervisor, which appends re-staffed workers here
    /// so shutdown joins every thread it ever started.
    workers: Arc<Mutex<Vec<JoinHandle<()>>>>,
    supervisor: Option<JoinHandle<()>>,
    stop: Arc<AtomicBool>,
    metrics: Arc<ServingMetrics>,
    pool: BufferPool<S>,
    sample_len: usize,
    output_len: usize,
}

impl<S: Scalar + Send + 'static> Server<S> {
    /// Start serving on the given engine replicas (one worker thread
    /// each). All engines must share a sample shape and batch capacity.
    /// Dead replicas stay dead; use [`Server::start_supervised`] for
    /// self-healing.
    pub fn start(engines: Vec<Engine<S>>, policy: BatchPolicy) -> Result<Self, ServeError> {
        Self::start_inner(engines, policy, None)
    }

    /// Start serving on `n_replicas` engines built from `factory`, plus a
    /// supervisor thread that rebuilds and re-staffs any replica whose
    /// worker dies — without re-reading the snapshot, since the factory
    /// holds the one decoded weight copy all replicas share.
    pub fn start_supervised(
        factory: EngineFactory<S>,
        n_replicas: usize,
        policy: BatchPolicy,
        supervisor: SupervisorPolicy,
    ) -> Result<Self, ServeError> {
        let engines = factory.build_n(n_replicas)?;
        Self::start_inner(engines, policy, Some((factory, supervisor)))
    }

    fn start_inner(
        engines: Vec<Engine<S>>,
        policy: BatchPolicy,
        supervise: Option<(EngineFactory<S>, SupervisorPolicy)>,
    ) -> Result<Self, ServeError> {
        let first = engines
            .first()
            .ok_or_else(|| ServeError::Build("need at least one engine".into()))?;
        let (sample_len, output_len, max_batch) =
            (first.sample_len(), first.output_len(), first.max_batch());
        if engines
            .iter()
            .any(|e| e.sample_len() != sample_len || e.max_batch() != max_batch)
        {
            return Err(ServeError::Build(
                "engine replicas disagree on sample shape or batch capacity".into(),
            ));
        }
        if policy.queue_depth == 0 {
            return Err(ServeError::Build("queue_depth must be >= 1".into()));
        }
        let (tx, rx) = std::sync::mpsc::sync_channel::<Request<S>>(policy.queue_depth);
        let metrics = Arc::new(ServingMetrics::default());
        let n_replicas = engines.len();
        metrics.set_replicas(n_replicas);
        let shared = WorkerShared {
            rx: Arc::new(Mutex::new(rx)),
            stop: Arc::new(AtomicBool::new(false)),
            metrics: Arc::clone(&metrics),
            // Worst case every queued request plus a full in-flight batch
            // per replica holds a buffer at once.
            pool: BufferPool::new(policy.queue_depth + n_replicas * max_batch),
            policy,
        };
        let mut workers = Vec::with_capacity(n_replicas);
        let mut spawn_err = None;
        for (i, engine) in engines.into_iter().enumerate() {
            match spawn_worker(i, engine, shared.clone()) {
                Ok(h) => workers.push(h),
                Err(e) => {
                    // A replica we cannot staff is a dead replica, not a
                    // fatal error — serve on whatever did spawn (or let
                    // the supervisor retry it).
                    metrics.on_replica_dead(i);
                    spawn_err = Some(e);
                }
            }
        }
        if workers.is_empty() {
            return Err(ServeError::Build(format!(
                "could not spawn any serve worker: {}",
                spawn_err.map_or_else(|| "no engines".into(), |e| e.to_string())
            )));
        }
        let workers = Arc::new(Mutex::new(workers));
        let supervisor = match supervise {
            None => None,
            Some((factory, sup)) => {
                let shared = shared.clone();
                let workers = Arc::clone(&workers);
                Some(
                    std::thread::Builder::new()
                        .name("serve-supervisor".into())
                        .spawn(move || supervisor_loop(factory, sup, shared, workers))
                        .map_err(|e| {
                            ServeError::Build(format!("could not spawn supervisor: {e}"))
                        })?,
                )
            }
        };
        Ok(Self {
            tx,
            workers,
            supervisor,
            stop: shared.stop,
            metrics,
            pool: shared.pool,
            sample_len,
            output_len,
        })
    }

    /// Values per input sample, as the engine replicas expect.
    pub fn sample_len(&self) -> usize {
        self.sample_len
    }

    /// Values per output row the engines produce (the wire front-end
    /// advertises this in its handshake).
    pub fn output_len(&self) -> usize {
        self.output_len
    }

    /// A cheap cloneable handle for submitting requests from other threads
    /// (the load generator's client side).
    pub fn client(&self) -> Client<S> {
        Client {
            tx: self.tx.clone(),
            metrics: Arc::clone(&self.metrics),
            sample_len: self.sample_len,
        }
    }

    /// Submit one sample and block for its output. See [`Client::infer`].
    pub fn infer(&self, input: &[S]) -> Result<OutputBuf<S>, ServeError> {
        self.client().infer(input)
    }

    /// Submit with a deadline. See [`Client::infer_with_deadline`].
    pub fn infer_with_deadline(
        &self,
        input: &[S],
        deadline: Instant,
    ) -> Result<OutputBuf<S>, ServeError> {
        self.client().infer_with_deadline(input, deadline)
    }

    /// Live metrics handle (snapshot any time with
    /// [`ServingMetrics::report`]).
    pub fn metrics(&self) -> Arc<ServingMetrics> {
        Arc::clone(&self.metrics)
    }

    /// The reply-buffer pool (hit/miss counters show whether the reply
    /// path has stopped allocating).
    pub fn pool(&self) -> &BufferPool<S> {
        &self.pool
    }

    /// Drain in-flight requests, stop the workers, and return the final
    /// report. Outstanding [`Client`] handles get [`ServeError::Closed`]
    /// (via a disconnected reply) for anything submitted after this.
    pub fn shutdown(self) -> ServingReport {
        self.stop.store(true, Ordering::SeqCst);
        // Dropping our sender closes the channel once all clients are gone;
        // workers also poll `stop` so they exit even while clients linger.
        drop(self.tx);
        // Supervisor first, so no new workers appear while we drain.
        if let Some(s) = self.supervisor {
            let _ = s.join();
        }
        for w in self.workers.lock().drain(..) {
            let _ = w.join();
        }
        self.metrics.report()
    }
}

/// A cloneable request submitter.
pub struct Client<S: Scalar + Send + 'static = f32> {
    tx: SyncSender<Request<S>>,
    metrics: Arc<ServingMetrics>,
    sample_len: usize,
}

impl<S: Scalar + Send + 'static> Clone for Client<S> {
    fn clone(&self) -> Self {
        Self {
            tx: self.tx.clone(),
            metrics: Arc::clone(&self.metrics),
            sample_len: self.sample_len,
        }
    }
}

impl<S: Scalar + Send + 'static> Client<S> {
    /// Values per input sample, as the engine replicas expect.
    pub fn sample_len(&self) -> usize {
        self.sample_len
    }

    /// Submit one sample and block until its output arrives (or the
    /// request is rejected / the server closes). The returned
    /// [`OutputBuf`] derefs to the output values and recycles its storage
    /// when dropped.
    pub fn infer(&self, input: &[S]) -> Result<OutputBuf<S>, ServeError> {
        self.submit(input, None)
    }

    /// Like [`Client::infer`], but the request is dropped with
    /// [`ServeError::TimedOut`] if it is still queued at `deadline`.
    pub fn infer_with_deadline(
        &self,
        input: &[S],
        deadline: Instant,
    ) -> Result<OutputBuf<S>, ServeError> {
        self.submit(input, Some(deadline))
    }

    /// Submit one sample without blocking: `callback` runs on the worker
    /// thread that finishes the request (with the output, or `TimedOut` if
    /// the deadline expired in the queue, or a replica error). Admission
    /// failures are synchronous — `Rejected` (queue full) and `Closed`
    /// (no healthy replica / shut down) return as errors here and the
    /// callback is never invoked, so the caller can answer backpressure
    /// immediately instead of parking a thread on it.
    ///
    /// This is the bridge the event-driven `rpc` front-end rides: thousands
    /// of connections share the batcher with zero blocked handler threads,
    /// and compute still runs on the bounded worker pool.
    pub fn submit_async(
        &self,
        input: Vec<S>,
        deadline: Option<Instant>,
        callback: impl FnOnce(Result<OutputBuf<S>, ServeError>) + Send + 'static,
    ) -> Result<(), ServeError> {
        self.enqueue(input, deadline, Responder::Callback(Box::new(callback)))
    }

    fn submit(&self, input: &[S], deadline: Option<Instant>) -> Result<OutputBuf<S>, ServeError> {
        let (reply_tx, reply_rx) = std::sync::mpsc::sync_channel(1);
        self.enqueue(input.to_vec(), deadline, Responder::Channel(reply_tx))?;
        reply_rx.recv().unwrap_or(Err(ServeError::Closed))
    }

    fn enqueue(
        &self,
        input: Vec<S>,
        deadline: Option<Instant>,
        reply: Responder<S>,
    ) -> Result<(), ServeError> {
        if input.len() != self.sample_len {
            return Err(ServeError::BadInput(format!(
                "sample has {} values, server expects {}",
                input.len(),
                self.sample_len
            )));
        }
        if self.metrics.healthy_replicas() == 0 {
            // Every worker has died; nothing will ever drain the queue.
            // (Under a supervisor this is a transient state — the caller
            // may retry — but blocking here until a restart would turn a
            // fast failure into an unbounded stall.)
            return Err(ServeError::Closed);
        }
        let req = Request {
            input,
            submitted: Instant::now(),
            deadline,
            reply,
        };
        // Count before sending so a worker's dequeue can never observe the
        // counter below zero; undo on the failure paths.
        self.metrics.on_enqueue();
        match self.tx.try_send(req) {
            Ok(()) => Ok(()),
            Err(TrySendError::Full(_)) => {
                self.metrics.on_dequeue();
                self.metrics.on_rejected();
                Err(ServeError::Rejected)
            }
            Err(TrySendError::Disconnected(_)) => {
                self.metrics.on_dequeue();
                Err(ServeError::Closed)
            }
        }
    }
}

/// The self-healing loop: scan for dead replicas, rebuild their engines
/// from the factory's shared weight copy, re-staff their worker threads —
/// at most `max_restarts` times per sliding `restart_window`. Runs until
/// shutdown or until the budget is exhausted (then the surviving replicas
/// serve on unsupervised).
fn supervisor_loop<S: Scalar + Send + 'static>(
    factory: EngineFactory<S>,
    sup: SupervisorPolicy,
    shared: WorkerShared<S>,
    workers: Arc<Mutex<Vec<JoinHandle<()>>>>,
) {
    let mut restarts: Vec<Instant> = Vec::new();
    loop {
        if shared.stop.load(Ordering::SeqCst) {
            return;
        }
        std::thread::sleep(sup.poll);
        for i in shared.metrics.dead_replicas() {
            if shared.stop.load(Ordering::SeqCst) {
                return;
            }
            let now = Instant::now();
            restarts.retain(|t| now.duration_since(*t) < sup.restart_window);
            if restarts.len() >= sup.max_restarts {
                // Budget exhausted: replicas are dying faster than a
                // restart can plausibly fix. Stand down rather than mask
                // a systematic failure with a restart storm.
                return;
            }
            let engine = match factory.build() {
                Ok(e) => e,
                // Build failed (e.g. allocation); leave the replica dead
                // and try again next poll.
                Err(_) => continue,
            };
            match spawn_worker(i, engine, shared.clone()) {
                Ok(h) => {
                    restarts.push(now);
                    // Re-staff before flipping the gauge so a client never
                    // observes "healthy" with no worker attached.
                    workers.lock().push(h);
                    shared.metrics.on_replica_restarted(i);
                }
                Err(_) => continue,
            }
        }
    }
}

/// One worker: pull a first request, assemble a batch within the policy
/// window, drop expired requests, run the engine, demux the outputs into
/// pooled buffers.
///
/// The engine run is wrapped in `catch_unwind`: a panicking replica
/// answers its in-flight batch with [`ServeError::Replica`] and retires —
/// it never takes the process (or the other replicas) down with it, and
/// the shared queue keeps draining through the survivors. Under
/// [`Server::start_supervised`] the retirement is what the supervisor's
/// gauge scan picks up.
fn worker_loop<S: Scalar + Send + 'static>(
    replica: usize,
    mut engine: Engine<S>,
    shared: WorkerShared<S>,
) {
    // How long a worker waits for its *first* request before rechecking
    // the stop flag; bounds shutdown latency while clients still exist.
    const IDLE_POLL: Duration = Duration::from_millis(20);
    let WorkerShared {
        rx,
        stop,
        metrics,
        pool,
        policy,
    } = shared;
    let max_batch = engine.max_batch();
    loop {
        // Phase 1: wait for the batch's first request. The receiver lock
        // is held only while waiting, never during inference, so other
        // replicas drain the queue while this one computes.
        let first = {
            let guard = rx.lock();
            match guard.recv_timeout(IDLE_POLL) {
                Ok(r) => r,
                Err(RecvTimeoutError::Timeout) => {
                    if stop.load(Ordering::SeqCst) {
                        return;
                    }
                    continue;
                }
                Err(RecvTimeoutError::Disconnected) => return,
            }
        };
        metrics.on_dequeue();
        let mut batch = vec![first];
        // Phase 2: straggler window — top up to max_batch or max_delay.
        let window_end = Instant::now() + policy.max_delay;
        while batch.len() < max_batch {
            let now = Instant::now();
            if now >= window_end {
                break;
            }
            let next = { rx.lock().recv_timeout(window_end - now) };
            match next {
                Ok(r) => {
                    metrics.on_dequeue();
                    batch.push(r);
                }
                Err(RecvTimeoutError::Timeout) => break,
                Err(RecvTimeoutError::Disconnected) => break,
            }
        }
        // Phase 3: shed expired requests.
        let now = Instant::now();
        let (live, dead): (Vec<_>, Vec<_>) = batch
            .into_iter()
            .partition(|r| r.deadline.is_none_or(|d| d > now));
        for r in dead {
            metrics.on_timed_out();
            r.reply.respond(Err(ServeError::TimedOut));
        }
        if live.is_empty() {
            continue;
        }
        // Phase 4: run and demux. `live` stays outside the unwind boundary
        // so a panicking engine cannot drop the reply channels — every
        // in-flight request gets an explicit error instead of a hangup.
        let waits: Vec<Duration> = live.iter().map(|r| now - r.submitted).collect();
        metrics.on_batch(live.len(), &waits);
        let inputs: Vec<&[S]> = live.iter().map(|r| r.input.as_slice()).collect();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            net::faults::hit("serve.worker").map_err(|e| ServeError::Replica(e.to_string()))?;
            // Slice straight out of the engine's output blob into pooled
            // reply buffers: no per-request allocation once the pool is
            // warm. The demux stays inside the unwind boundary because the
            // flat slice borrows the engine.
            let flat = engine.infer_batch(&inputs)?;
            let out_len = flat.len() / inputs.len();
            Ok::<_, ServeError>(
                flat.chunks(out_len)
                    .map(|chunk| pool.checkout_from(chunk))
                    .collect::<Vec<_>>(),
            )
        }));
        match result {
            Ok(Ok(outputs)) => {
                let done = Instant::now();
                for (r, out) in live.into_iter().zip(outputs) {
                    metrics.on_completed(done - r.submitted);
                    r.reply.respond(Ok(out));
                }
            }
            Ok(Err(e)) => {
                metrics.on_replica_error(replica);
                for r in live {
                    r.reply.respond(Err(e.clone()));
                }
            }
            Err(panic) => {
                let msg = panic
                    .downcast_ref::<&str>()
                    .map(|s| (*s).to_string())
                    .or_else(|| panic.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "non-string panic payload".into());
                metrics.on_replica_error(replica);
                metrics.on_replica_dead(replica);
                let err = ServeError::Replica(format!("replica {replica} panicked: {msg}"));
                for r in live {
                    r.reply.respond(Err(err.clone()));
                }
                // Retire: the engine state is suspect after an unwind. The
                // supervisor (if any) will rebuild from the factory.
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineConfig;
    use blob::Shape;
    use net::NetSpec;

    const TRAIN: &str = r#"
name: t
layer {
  name: d
  type: Data
  batch: 4
  top: data
  top: label
}
layer {
  name: ip
  type: InnerProduct
  num_output: 3
  seed: 5
  bottom: data
  top: ip
}
layer {
  name: loss
  type: SoftmaxWithLoss
  bottom: ip
  bottom: label
  top: prob
}
"#;

    fn factory() -> EngineFactory<f32> {
        let spec = NetSpec::parse(TRAIN).unwrap();
        EngineFactory::new(
            &spec,
            &Shape::from(vec![6usize]),
            &EngineConfig {
                max_batch: 4,
                n_threads: 1,
            },
            None,
        )
        .unwrap()
    }

    fn engines(n: usize) -> Vec<Engine<f32>> {
        factory().build_n(n).unwrap()
    }

    #[test]
    fn serves_concurrent_clients() {
        let server = Server::start(engines(2), BatchPolicy::default()).unwrap();
        let handles: Vec<_> = (0..8)
            .map(|i| {
                let client = server.client();
                std::thread::spawn(move || {
                    let x = [i as f32 * 0.1; 6];
                    client.infer(&x).unwrap().to_vec()
                })
            })
            .collect();
        for h in handles {
            let out = h.join().unwrap();
            assert_eq!(out.len(), 3);
        }
        let report = server.shutdown();
        assert_eq!(report.completed, 8);
        assert_eq!(report.rejected, 0);
        assert!(report.n_batches >= 2, "two replicas, >= 2 batches");
    }

    #[test]
    fn rejects_wrong_sample_length() {
        let server = Server::start(engines(1), BatchPolicy::default()).unwrap();
        let e = server.infer(&[0.0; 5]).unwrap_err();
        assert!(matches!(e, ServeError::BadInput(_)));
        server.shutdown();
    }

    #[test]
    fn expired_deadline_times_out() {
        let server = Server::start(engines(1), BatchPolicy::default()).unwrap();
        // A deadline already in the past must come back TimedOut.
        let past = Instant::now() - Duration::from_millis(1);
        let e = server.infer_with_deadline(&[0.0; 6], past).unwrap_err();
        assert_eq!(e, ServeError::TimedOut);
        let report = server.shutdown();
        assert_eq!(report.timed_out, 1);
        assert_eq!(report.completed, 0);
    }

    #[test]
    fn reply_path_reuses_pooled_buffers() {
        let server = Server::start(engines(1), BatchPolicy::default()).unwrap();
        let x = [0.5f32; 6];
        // Sequential requests: each reply buffer is back in the pool
        // before the next checkout, so only the first can allocate.
        for _ in 0..50 {
            let out = server.infer(&x).unwrap();
            assert_eq!(out.len(), 3);
        }
        let misses = server.pool().misses();
        let hits = server.pool().hits();
        server.shutdown();
        assert_eq!(misses, 1, "steady state allocates nothing");
        assert_eq!(hits, 49);
    }

    #[test]
    fn submit_async_matches_blocking_infer() {
        let server = Server::start(engines(1), BatchPolicy::default()).unwrap();
        let x = [0.5f32; 6];
        let want = server.infer(&x).unwrap().to_vec();
        let (tx, rx) = std::sync::mpsc::channel();
        server
            .client()
            .submit_async(x.to_vec(), None, move |r| {
                let _ = tx.send(r.map(|o| o.to_vec()));
            })
            .unwrap();
        let got = rx
            .recv_timeout(Duration::from_secs(5))
            .expect("callback ran")
            .unwrap();
        assert_eq!(got, want, "callback path is bit-identical to blocking");
        // Shape errors surface synchronously; the callback is never invoked.
        let e = server
            .client()
            .submit_async(vec![0.0; 5], None, |_| panic!("must not run"))
            .unwrap_err();
        assert!(matches!(e, ServeError::BadInput(_)));
        let report = server.shutdown();
        assert_eq!(report.completed, 2);
    }

    #[test]
    fn supervised_server_without_faults_never_restarts() {
        let server = Server::start_supervised(
            factory(),
            2,
            BatchPolicy::default(),
            SupervisorPolicy {
                poll: Duration::from_millis(1),
                ..SupervisorPolicy::default()
            },
        )
        .unwrap();
        let x = [0.25f32; 6];
        for _ in 0..10 {
            assert_eq!(server.infer(&x).unwrap().len(), 3);
        }
        let report = server.shutdown();
        assert_eq!(report.completed, 10);
        assert_eq!(report.replica_restarts, 0);
        assert_eq!(report.healthy_replicas, 2);
    }
}
