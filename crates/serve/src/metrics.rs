//! Serving metrics: latency percentiles, batch-size distribution, queue
//! depth, admission counters, throughput — plus the same CSV form factor
//! as `machine::csv` so serving numbers land next to the figure data.
//!
//! [`ServingMetrics`] is the live, thread-shared accumulator the server
//! and its workers write into; [`ServingReport`] is the immutable summary
//! snapshotted from it at shutdown (or any other moment).
//!
//! Storage is bounded no matter how long the server runs: latency and
//! queue-wait streams are held in fixed-capacity [`obs::Reservoir`]s
//! ([`SAMPLE_CAP`] retained samples each; counts, sums, and extrema stay
//! exact, percentiles become reservoir estimates once the cap is passed),
//! and batch sizes accumulate into an exact `(size, count)` histogram
//! whose length is bounded by the number of distinct batch sizes (at most
//! the configured `max_batch`).

use obs::Reservoir;
use parking_lot::Mutex;
use std::fmt;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::{Duration, Instant};

/// Retained samples per latency/queue-wait reservoir. At 8 bytes per
/// sample this caps each stream at 32 KiB regardless of run length.
pub const SAMPLE_CAP: usize = 4096;

/// Thread-shared metrics accumulator.
pub struct ServingMetrics {
    latencies_us: Mutex<Reservoir>,
    queue_wait_us: Mutex<Reservoir>,
    /// Exact `(batch_size, count)` histogram, ascending by size.
    batch_hist: Mutex<Vec<(usize, u64)>>,
    completed: AtomicU64,
    rejected: AtomicU64,
    timed_out: AtomicU64,
    depth: AtomicUsize,
    max_depth: AtomicUsize,
    window: Mutex<Option<(Instant, Instant)>>,
    replica_errors: Mutex<Vec<u64>>,
    replica_alive: Mutex<Vec<bool>>,
    replica_restarts: AtomicU64,
}

impl Default for ServingMetrics {
    fn default() -> Self {
        Self {
            // Fixed seeds: the retained sample (and so the reported
            // percentiles) is reproducible for a given request sequence.
            latencies_us: Mutex::new(Reservoir::new(SAMPLE_CAP, 0x5e41)),
            queue_wait_us: Mutex::new(Reservoir::new(SAMPLE_CAP, 0x9_0a17)),
            batch_hist: Mutex::new(Vec::new()),
            completed: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            timed_out: AtomicU64::new(0),
            depth: AtomicUsize::new(0),
            max_depth: AtomicUsize::new(0),
            window: Mutex::new(None),
            replica_errors: Mutex::new(Vec::new()),
            replica_alive: Mutex::new(Vec::new()),
            replica_restarts: AtomicU64::new(0),
        }
    }
}

impl ServingMetrics {
    /// A request was admitted to the queue.
    pub fn on_enqueue(&self) {
        let d = self.depth.fetch_add(1, Ordering::Relaxed) + 1;
        self.max_depth.fetch_max(d, Ordering::Relaxed);
        let now = Instant::now();
        let mut w = self.window.lock();
        *w = match *w {
            None => Some((now, now)),
            Some((s, e)) => Some((s, e.max(now))),
        };
    }

    /// A request left the queue (for any reason).
    pub fn on_dequeue(&self) {
        self.depth.fetch_sub(1, Ordering::Relaxed);
    }

    /// A request bounced off the full queue.
    pub fn on_rejected(&self) {
        self.rejected.fetch_add(1, Ordering::Relaxed);
    }

    /// A request's deadline expired before execution.
    pub fn on_timed_out(&self) {
        self.timed_out.fetch_add(1, Ordering::Relaxed);
    }

    /// A micro-batch of `n` live requests is about to run; `waits` are the
    /// per-request queue delays (submit → batch assembly).
    pub fn on_batch(&self, n: usize, waits: &[Duration]) {
        {
            let mut hist = self.batch_hist.lock();
            match hist.iter_mut().find(|(size, _)| *size == n) {
                Some((_, c)) => *c += 1,
                None => {
                    hist.push((n, 1));
                    hist.sort_unstable();
                }
            }
        }
        let mut q = self.queue_wait_us.lock();
        for d in waits {
            q.record(d.as_secs_f64() * 1e6);
        }
    }

    /// A request completed successfully after `latency` (submit → reply).
    pub fn on_completed(&self, latency: Duration) {
        self.completed.fetch_add(1, Ordering::Relaxed);
        self.latencies_us.lock().record(latency.as_secs_f64() * 1e6);
        let now = Instant::now();
        let mut w = self.window.lock();
        *w = match *w {
            None => Some((now, now)),
            Some((s, e)) => Some((s, e.max(now))),
        };
    }

    /// `(retained latency samples, retained queue-wait samples)` — bounded
    /// by [`SAMPLE_CAP`] each; the regression test for unbounded growth.
    pub fn sample_counts(&self) -> (usize, usize) {
        (
            self.latencies_us.lock().samples().len(),
            self.queue_wait_us.lock().samples().len(),
        )
    }

    /// Declare `n` replicas, all initially healthy. Called once by the
    /// server at startup.
    pub fn set_replicas(&self, n: usize) {
        *self.replica_errors.lock() = vec![0; n];
        *self.replica_alive.lock() = vec![true; n];
    }

    /// Replica `i` failed to execute a batch (engine error or panic).
    pub fn on_replica_error(&self, i: usize) {
        let mut errs = self.replica_errors.lock();
        if i >= errs.len() {
            errs.resize(i + 1, 0);
        }
        errs[i] += 1;
    }

    /// Replica `i` is permanently out of service (its worker retired).
    pub fn on_replica_dead(&self, i: usize) {
        let mut alive = self.replica_alive.lock();
        if i >= alive.len() {
            alive.resize(i + 1, true);
        }
        alive[i] = false;
    }

    /// Replica `i` came back: its worker was re-staffed by the
    /// supervisor. Marks it healthy again and counts the restart.
    pub fn on_replica_restarted(&self, i: usize) {
        let mut alive = self.replica_alive.lock();
        if i >= alive.len() {
            alive.resize(i + 1, true);
        }
        alive[i] = true;
        drop(alive);
        self.replica_restarts.fetch_add(1, Ordering::Relaxed);
    }

    /// Replicas still in service. `0` means the server can no longer
    /// answer anything.
    pub fn healthy_replicas(&self) -> usize {
        self.replica_alive.lock().iter().filter(|a| **a).count()
    }

    /// Ids of the replicas currently out of service — the supervisor's
    /// work list.
    pub fn dead_replicas(&self) -> Vec<usize> {
        self.replica_alive
            .lock()
            .iter()
            .enumerate()
            .filter_map(|(i, alive)| (!alive).then_some(i))
            .collect()
    }

    /// Total worker re-staffs performed by the supervisor so far.
    pub fn replica_restarts(&self) -> u64 {
        self.replica_restarts.load(Ordering::Relaxed)
    }

    /// Snapshot the accumulated counters into an immutable report.
    ///
    /// Latency/queue-wait counts, means, and maxima are exact; the
    /// percentiles are computed over the retained reservoir sample, so
    /// they are exact until [`SAMPLE_CAP`] samples have been recorded and
    /// an unbiased estimate after that.
    pub fn report(&self) -> ServingReport {
        let latencies = self.latencies_us.lock();
        let waits = self.queue_wait_us.lock();
        let hist = self.batch_hist.lock().clone();
        let wall_secs = self
            .window
            .lock()
            .map(|(s, e)| (e - s).as_secs_f64())
            .unwrap_or(0.0);
        let completed = self.completed.load(Ordering::Relaxed);
        let n_batches: u64 = hist.iter().map(|&(_, c)| c).sum();
        let batch_total: u64 = hist.iter().map(|&(s, c)| s as u64 * c).sum();
        ServingReport {
            completed,
            rejected: self.rejected.load(Ordering::Relaxed),
            timed_out: self.timed_out.load(Ordering::Relaxed),
            p50_us: percentile(latencies.samples(), 0.50),
            p95_us: percentile(latencies.samples(), 0.95),
            p99_us: percentile(latencies.samples(), 0.99),
            mean_latency_us: latencies.mean(),
            max_latency_us: latencies.max(),
            mean_queue_wait_us: waits.mean(),
            mean_batch: if n_batches == 0 {
                0.0
            } else {
                batch_total as f64 / n_batches as f64
            },
            max_batch: hist.last().map(|&(s, _)| s).unwrap_or(0),
            n_batches,
            batch_hist: hist,
            max_queue_depth: self.max_depth.load(Ordering::Relaxed),
            replica_errors: self.replica_errors.lock().clone(),
            healthy_replicas: self.healthy_replicas(),
            replica_restarts: self.replica_restarts.load(Ordering::Relaxed),
            wall_secs,
            throughput_rps: if wall_secs > 0.0 {
                completed as f64 / wall_secs
            } else {
                0.0
            },
        }
    }
}

/// Nearest-rank percentile of an unsorted sample; 0 when empty.
pub fn percentile(values: &[f64], q: f64) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    // total_cmp, not partial_cmp().unwrap(): a NaN latency sample (e.g. a
    // poisoned clock delta) must not panic the reporting path. NaN sorts
    // above every real value, so it can only inflate the top percentile.
    let mut v = values.to_vec();
    v.sort_by(f64::total_cmp);
    let rank = ((q * v.len() as f64).ceil() as usize).clamp(1, v.len());
    v[rank - 1]
}

/// Immutable summary of one serving run.
#[derive(Debug, Clone, PartialEq)]
pub struct ServingReport {
    /// Requests answered successfully.
    pub completed: u64,
    /// Requests bounced off the full admission queue.
    pub rejected: u64,
    /// Requests whose deadline expired before execution.
    pub timed_out: u64,
    /// Median end-to-end latency, microseconds.
    pub p50_us: f64,
    /// 95th-percentile latency, microseconds.
    pub p95_us: f64,
    /// 99th-percentile latency, microseconds.
    pub p99_us: f64,
    /// Mean latency, microseconds.
    pub mean_latency_us: f64,
    /// Worst observed latency, microseconds.
    pub max_latency_us: f64,
    /// Mean queue delay before batch assembly, microseconds.
    pub mean_queue_wait_us: f64,
    /// Mean executed micro-batch size.
    pub mean_batch: f64,
    /// Largest executed micro-batch.
    pub max_batch: usize,
    /// Number of executed micro-batches.
    pub n_batches: u64,
    /// `(batch_size, count)` distribution, ascending by size.
    pub batch_hist: Vec<(usize, u64)>,
    /// Deepest the admission queue ever got.
    pub max_queue_depth: usize,
    /// Batch-execution failures per replica (engine errors and panics),
    /// indexed by replica id.
    pub replica_errors: Vec<u64>,
    /// Replicas still in service at snapshot time.
    pub healthy_replicas: usize,
    /// Worker re-staffs performed by the supervisor.
    pub replica_restarts: u64,
    /// First enqueue → last completion, seconds.
    pub wall_secs: f64,
    /// Completed requests per second over that window.
    pub throughput_rps: f64,
}

impl ServingReport {
    /// `metric,value` CSV of every scalar in the report.
    pub fn csv(&self) -> String {
        let mut out = String::from("metric,value\n");
        out.push_str(&format!("completed,{}\n", self.completed));
        out.push_str(&format!("rejected,{}\n", self.rejected));
        out.push_str(&format!("timed_out,{}\n", self.timed_out));
        out.push_str(&format!("p50_us,{:.3}\n", self.p50_us));
        out.push_str(&format!("p95_us,{:.3}\n", self.p95_us));
        out.push_str(&format!("p99_us,{:.3}\n", self.p99_us));
        out.push_str(&format!("mean_latency_us,{:.3}\n", self.mean_latency_us));
        out.push_str(&format!("max_latency_us,{:.3}\n", self.max_latency_us));
        out.push_str(&format!(
            "mean_queue_wait_us,{:.3}\n",
            self.mean_queue_wait_us
        ));
        out.push_str(&format!("mean_batch,{:.3}\n", self.mean_batch));
        out.push_str(&format!("max_batch,{}\n", self.max_batch));
        out.push_str(&format!("n_batches,{}\n", self.n_batches));
        out.push_str(&format!("max_queue_depth,{}\n", self.max_queue_depth));
        out.push_str(&format!("healthy_replicas,{}\n", self.healthy_replicas));
        out.push_str(&format!("replica_restarts,{}\n", self.replica_restarts));
        for (i, e) in self.replica_errors.iter().enumerate() {
            out.push_str(&format!("replica_{i}_errors,{e}\n"));
        }
        out.push_str(&format!("wall_secs,{:.4}\n", self.wall_secs));
        out.push_str(&format!("throughput_rps,{:.2}\n", self.throughput_rps));
        out
    }

    /// `batch_size,count` CSV of the micro-batch size distribution.
    pub fn batch_hist_csv(&self) -> String {
        let mut out = String::from("batch_size,count\n");
        for &(size, count) in &self.batch_hist {
            out.push_str(&format!("{size},{count}\n"));
        }
        out
    }

    /// Mirror the report's scalars into a metrics [`obs::Registry`] under
    /// `serve.*` names, so serving numbers appear in the same exposition
    /// (`--metrics`, [`obs::Registry::csv`]) as the training counters.
    ///
    /// Everything is published as a gauge — the report is already an
    /// aggregate snapshot, so re-publishing a newer report must replace the
    /// old values, not add to them.
    pub fn publish(&self, reg: &obs::Registry) {
        let pairs = [
            ("serve.completed", self.completed as f64),
            ("serve.rejected", self.rejected as f64),
            ("serve.timed_out", self.timed_out as f64),
            ("serve.p50_us", self.p50_us),
            ("serve.p95_us", self.p95_us),
            ("serve.p99_us", self.p99_us),
            ("serve.mean_latency_us", self.mean_latency_us),
            ("serve.max_latency_us", self.max_latency_us),
            ("serve.mean_queue_wait_us", self.mean_queue_wait_us),
            ("serve.mean_batch", self.mean_batch),
            ("serve.max_batch", self.max_batch as f64),
            ("serve.n_batches", self.n_batches as f64),
            ("serve.max_queue_depth", self.max_queue_depth as f64),
            ("serve.healthy_replicas", self.healthy_replicas as f64),
            ("serve.replica_restarts", self.replica_restarts as f64),
            ("serve.wall_secs", self.wall_secs),
            ("serve.throughput_rps", self.throughput_rps),
        ];
        for (name, value) in pairs {
            reg.gauge(name).set(value);
        }
    }
}

impl fmt::Display for ServingReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "completed {}  rejected {}  timed_out {}",
            self.completed, self.rejected, self.timed_out
        )?;
        writeln!(
            f,
            "latency us: p50 {:.1}  p95 {:.1}  p99 {:.1}  mean {:.1}  max {:.1}",
            self.p50_us, self.p95_us, self.p99_us, self.mean_latency_us, self.max_latency_us
        )?;
        writeln!(
            f,
            "batches: {} executed, mean size {:.2}, max size {}, mean queue wait {:.1} us",
            self.n_batches, self.mean_batch, self.max_batch, self.mean_queue_wait_us
        )?;
        writeln!(
            f,
            "replicas: {}/{} healthy, {} restarted, errors {:?}",
            self.healthy_replicas,
            self.replica_errors.len(),
            self.replica_restarts,
            self.replica_errors
        )?;
        write!(
            f,
            "throughput: {:.1} req/s over {:.3} s (max queue depth {})",
            self.throughput_rps, self.wall_secs, self.max_queue_depth
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_is_nearest_rank() {
        let v: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert_eq!(percentile(&v, 0.50), 50.0);
        assert_eq!(percentile(&v, 0.95), 95.0);
        assert_eq!(percentile(&v, 0.99), 99.0);
        assert_eq!(percentile(&v, 1.0), 100.0);
        assert_eq!(percentile(&[], 0.5), 0.0);
        assert_eq!(percentile(&[7.0], 0.99), 7.0);
    }

    #[test]
    fn percentile_survives_nan_samples() {
        // Regression: sort_by(partial_cmp().unwrap()) panicked here. NaN
        // must neither panic nor leak into the lower percentiles.
        let v = vec![3.0, f64::NAN, 1.0, 2.0];
        assert_eq!(percentile(&v, 0.50), 2.0);
        assert_eq!(percentile(&v, 0.25), 1.0);
        assert!(percentile(&v, 1.0).is_nan(), "NaN sorts to the top rank");
        assert!(percentile(&[f64::NAN], 0.5).is_nan());
    }

    #[test]
    fn report_aggregates_counters() {
        let m = ServingMetrics::default();
        m.on_enqueue();
        m.on_enqueue();
        m.on_dequeue();
        m.on_dequeue();
        m.on_rejected();
        m.on_batch(2, &[Duration::from_micros(10), Duration::from_micros(30)]);
        m.on_completed(Duration::from_micros(100));
        m.on_completed(Duration::from_micros(300));
        let r = m.report();
        assert_eq!(r.completed, 2);
        assert_eq!(r.rejected, 1);
        assert_eq!(r.timed_out, 0);
        assert_eq!(r.max_queue_depth, 2);
        assert_eq!(r.mean_batch, 2.0);
        assert_eq!(r.batch_hist, vec![(2, 1)]);
        assert_eq!(r.mean_queue_wait_us, 20.0);
        assert_eq!(r.p50_us, 100.0);
        assert_eq!(r.p99_us, 300.0);
    }

    #[test]
    fn replica_health_is_tracked() {
        let m = ServingMetrics::default();
        m.set_replicas(3);
        assert_eq!(m.healthy_replicas(), 3);
        m.on_replica_error(1);
        m.on_replica_error(1);
        m.on_replica_dead(1);
        let r = m.report();
        assert_eq!(r.replica_errors, vec![0, 2, 0]);
        assert_eq!(r.healthy_replicas, 2);
        assert!(r.csv().contains("replica_1_errors,2\n"));
        assert!(r.csv().contains("healthy_replicas,2\n"));
    }

    #[test]
    fn restart_revives_replica_and_is_counted() {
        let m = ServingMetrics::default();
        m.set_replicas(2);
        m.on_replica_dead(0);
        assert_eq!(m.dead_replicas(), vec![0]);
        assert_eq!(m.healthy_replicas(), 1);
        m.on_replica_restarted(0);
        assert_eq!(m.dead_replicas(), Vec::<usize>::new());
        assert_eq!(m.healthy_replicas(), 2);
        assert_eq!(m.replica_restarts(), 1);
        let r = m.report();
        assert_eq!(r.replica_restarts, 1);
        assert!(r.csv().contains("replica_restarts,1\n"));
        assert!(r.to_string().contains("1 restarted"));
    }

    #[test]
    fn storage_stays_bounded_over_a_million_records() {
        // Regression for unbounded Vec growth: a long-running server must
        // not accumulate one f64 per request. Aggregates stay exact.
        let m = ServingMetrics::default();
        let n = 1_000_000u64;
        for i in 0..n {
            m.on_completed(Duration::from_micros(i % 1000));
            if i % 4 == 0 {
                m.on_batch(1 + (i % 8) as usize, &[Duration::from_micros(i % 100)]);
            }
        }
        let (lat_samples, wait_samples) = m.sample_counts();
        assert_eq!(lat_samples, SAMPLE_CAP);
        assert_eq!(wait_samples, SAMPLE_CAP);
        let r = m.report();
        assert_eq!(r.completed, n);
        // Duration → secs_f64 → µs round-trips with ~1 ulp of noise.
        assert!((r.max_latency_us - 999.0).abs() < 1e-9);
        assert_eq!(r.n_batches, n / 4);
        assert!(r.batch_hist.len() <= 8, "one bucket per distinct size");
        assert_eq!(r.batch_hist.iter().map(|&(_, c)| c).sum::<u64>(), n / 4);
        // Percentiles are estimates past the cap, but over a uniform
        // 0..1000 stream they must land in the right neighbourhood.
        assert!((r.p50_us - 500.0).abs() < 50.0, "p50 {}", r.p50_us);
        assert!((r.p99_us - 990.0).abs() < 15.0, "p99 {}", r.p99_us);
    }

    #[test]
    fn publish_mirrors_report_into_registry_idempotently() {
        let m = ServingMetrics::default();
        m.set_replicas(2);
        m.on_batch(3, &[Duration::from_micros(5)]);
        for _ in 0..3 {
            m.on_completed(Duration::from_micros(40));
        }
        let r = m.report();
        let reg = obs::Registry::new();
        r.publish(&reg);
        r.publish(&reg); // gauges: second publish must not double anything
        let csv = reg.csv();
        assert!(csv.contains("serve.completed,3.000000\n"), "csv:\n{csv}");
        assert!(csv.contains("serve.p50_us,40.000000\n"), "csv:\n{csv}");
        assert!(
            csv.contains("serve.healthy_replicas,2.000000\n"),
            "csv:\n{csv}"
        );
        assert!(csv.contains("serve.n_batches,1.000000\n"), "csv:\n{csv}");
    }

    #[test]
    fn csv_rows_have_two_columns() {
        let r = ServingMetrics::default().report();
        for text in [r.csv(), r.batch_hist_csv()] {
            let mut lines = text.lines();
            let cols = lines.next().unwrap().split(',').count();
            assert_eq!(cols, 2);
            for l in lines {
                assert_eq!(l.split(',').count(), cols, "row {l}");
            }
        }
    }
}
