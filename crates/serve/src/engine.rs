//! The inference engine: one deploy net + one persistent thread team.
//!
//! An [`Engine`] is built once (spec transform, blob allocation, workspace
//! sizing) and then serves `infer_batch` calls for its whole lifetime —
//! the serving analogue of the paper's persistent-team training loop,
//! where thread creation and workspace allocation are hoisted out of the
//! hot path.
//!
//! The engine's input blob is fixed at `[max_batch, sample...]`; partial
//! batches are zero-padded up to `max_batch` and only the first `n` output
//! rows are read back. Forward runs under `Phase::Test` (dropout disabled)
//! with canonical-group reduction, so results are bit-identical for any
//! team size — the property the serving determinism test pins down.

use crate::deploy::deploy_spec;
use crate::ServeError;
use blob::{Blob, Shape};
use layers::ctx::{Phase, ReductionMode};
use mmblas::Scalar;
use net::{Net, NetSpec, RunConfig};
use omprt::{Schedule, ThreadTeam};
use std::io::Read;

/// Construction-time engine parameters.
#[derive(Debug, Clone, Copy)]
pub struct EngineConfig {
    /// Fixed batch capacity of the input blob (the batcher's `max_batch`).
    pub max_batch: usize,
    /// Thread-team size for the coalesced layer loops.
    pub n_threads: usize,
}

/// A forward-only network bound to a persistent thread team.
pub struct Engine<S: Scalar = f32> {
    net: Net<S>,
    team: ThreadTeam,
    run: RunConfig,
    input_name: String,
    output_name: String,
    max_batch: usize,
    sample_len: usize,
    output_len: usize,
    input_buf: Vec<S>,
}

impl<S: Scalar> Engine<S> {
    /// Build an engine from a *training* spec: apply the deploy transform,
    /// register the input blob at `[max_batch, sample_shape...]`, construct
    /// the net, and spin up the thread team. Weights start at their random
    /// initialization; load a snapshot with [`Engine::load_weights`].
    pub fn build(
        train_spec: &NetSpec,
        sample_shape: &Shape,
        cfg: &EngineConfig,
    ) -> Result<Self, ServeError> {
        if cfg.max_batch == 0 {
            return Err(ServeError::Build("max_batch must be >= 1".into()));
        }
        let deploy = deploy_spec(train_spec)?;
        let mut dims = Vec::with_capacity(1 + sample_shape.ndim());
        dims.push(cfg.max_batch);
        dims.extend_from_slice(sample_shape.dims());
        let input_shape = Shape::from(dims);

        let mut net =
            Net::from_spec_with_inputs(&deploy.spec, None, &[(deploy.input.clone(), input_shape)])
                .map_err(|e| ServeError::Build(e.to_string()))?;
        let output_name = net
            .output_names()
            .last()
            .map(|s| s.to_string())
            .ok_or_else(|| ServeError::Build("deploy net has no output blob".into()))?;
        let sample_len = sample_shape.count();
        let output_len = net
            .blob(&output_name)
            .ok_or_else(|| {
                ServeError::Build(format!(
                    "deploy net output '{output_name}' has no backing blob"
                ))
            })?
            .sample_len();

        let team = ThreadTeam::new(cfg.n_threads.max(1));
        let run = RunConfig {
            schedule: Schedule::Static,
            // Canonical groups make the (forward-only) pass bit-identical
            // across team sizes, matching the training replicas.
            reduction: ReductionMode::Canonical { groups: 16 },
            phase: Phase::Test,
        };
        // Size the workspace now, not on the first request.
        net.ensure_workspace(team.size(), run.reduction);

        Ok(Self {
            input_buf: vec![S::ZERO; cfg.max_batch * sample_len],
            net,
            team,
            run,
            input_name: deploy.input,
            output_name,
            max_batch: cfg.max_batch,
            sample_len,
            output_len,
        })
    }

    /// Load a `CGDN` snapshot into the engine's parameters. If the
    /// parameters were shared with other engines (built through an
    /// [`EngineFactory`]), this detaches a private copy first — the other
    /// replicas keep their bits.
    pub fn load_weights(&mut self, r: impl Read) -> Result<(), ServeError> {
        net::load_params(&mut self.net, r).map_err(|e| ServeError::Weights(e.to_string()))
    }

    /// Replace this engine's parameters with copy-on-write clones of
    /// `params` — the decoded weights are shared, not duplicated. Shapes
    /// are validated blob by blob.
    pub fn adopt_params(&mut self, params: &[Blob<S>]) -> Result<(), ServeError> {
        self.net
            .adopt_params(params)
            .map_err(|e| ServeError::Weights(e.to_string()))
    }

    /// Copy-on-write clones of this engine's parameter blobs (cheap: the
    /// buffers are shared, not copied).
    pub fn params(&self) -> Vec<Blob<S>> {
        self.net.learnable_params().into_iter().cloned().collect()
    }

    /// Heap bytes of parameter storage this engine uniquely owns; shared
    /// (factory-built) replicas report ~0 here.
    pub fn params_unique_bytes(&self) -> usize {
        self.net.params_unique_bytes()
    }

    /// Run one micro-batch of up to [`Engine::max_batch`] samples; returns
    /// the outputs as one flat slice of `samples.len() * output_len`
    /// values, sample-major, borrowed from the engine's output blob — no
    /// allocation on the hot path (the batcher demuxes into pooled
    /// buffers). The slice is valid until the next `infer_batch` call.
    /// The unused tail of the input blob is zeroed, so a partial batch
    /// produces the same bits regardless of what ran before.
    pub fn infer_batch(&mut self, samples: &[&[S]]) -> Result<&[S], ServeError> {
        let n = samples.len();
        if n == 0 || n > self.max_batch {
            return Err(ServeError::BadInput(format!(
                "batch of {n} samples, engine capacity is 1..={}",
                self.max_batch
            )));
        }
        for (i, s) in samples.iter().enumerate() {
            if s.len() != self.sample_len {
                return Err(ServeError::BadInput(format!(
                    "sample {i} has {} values, engine expects {}",
                    s.len(),
                    self.sample_len
                )));
            }
            self.input_buf[i * self.sample_len..(i + 1) * self.sample_len].copy_from_slice(s);
        }
        self.input_buf[n * self.sample_len..].fill(S::ZERO);

        self.net
            .set_input(&self.input_name, &self.input_buf)
            .map_err(|e| ServeError::Build(e.to_string()))?;
        self.net.forward(&self.team, &self.run);

        let out = self.net.blob(&self.output_name).ok_or_else(|| {
            ServeError::Build(format!("output blob '{}' disappeared", self.output_name))
        })?;
        Ok(&out.data()[..n * self.output_len])
    }

    /// Convenience wrapper: run one sample and return an owned output
    /// vector (allocates — use [`Engine::infer_batch`] on hot paths).
    pub fn infer_one(&mut self, sample: &[S]) -> Result<Vec<S>, ServeError> {
        self.infer_batch(&[sample]).map(|o| o.to_vec())
    }

    /// Batch capacity of the input blob.
    pub fn max_batch(&self) -> usize {
        self.max_batch
    }

    /// Values per input sample.
    pub fn sample_len(&self) -> usize {
        self.sample_len
    }

    /// Values per output sample.
    pub fn output_len(&self) -> usize {
        self.output_len
    }

    /// Name of the externally-fed input blob.
    pub fn input_name(&self) -> &str {
        &self.input_name
    }

    /// Name of the demuxed output blob.
    pub fn output_name(&self) -> &str {
        &self.output_name
    }

    /// Thread-team size.
    pub fn team_size(&self) -> usize {
        self.team.size()
    }

    /// Architecture table of the deploy net.
    pub fn summary(&self) -> String {
        self.net.summary()
    }
}

/// A reusable recipe for engine replicas: one spec, one decoded weight
/// set, any number of engines. The snapshot bytes are decoded exactly once
/// (in [`EngineFactory::new`]); every [`EngineFactory::build`] hands the
/// new engine copy-on-write clones of those parameters, so N replicas
/// share one decoded copy — the paper's single-weight-copy invariant,
/// extended to serving. The supervisor uses the same factory to rebuild a
/// dead replica without re-reading or re-decoding anything.
pub struct EngineFactory<S: Scalar = f32> {
    train_spec: NetSpec,
    sample_shape: Shape,
    cfg: EngineConfig,
    params: Vec<Blob<S>>,
    plan: Option<plan::Plan>,
}

impl<S: Scalar> EngineFactory<S> {
    /// Validate the spec by building a template engine, decode `weights`
    /// into it (if given) and capture the parameter set for sharing.
    /// Without weights the template's seeded random initialization becomes
    /// the shared set, so replicas are still bit-identical to each other.
    pub fn new(
        train_spec: &NetSpec,
        sample_shape: &Shape,
        cfg: &EngineConfig,
        weights: Option<&[u8]>,
    ) -> Result<Self, ServeError> {
        // The template team is never used for inference; size 1 avoids
        // spawning throwaway worker threads.
        let mut template = Engine::build(
            train_spec,
            sample_shape,
            &EngineConfig {
                n_threads: 1,
                ..*cfg
            },
        )?;
        if let Some(bytes) = weights {
            template.load_weights(bytes)?;
        }
        Ok(Self {
            train_spec: train_spec.clone(),
            sample_shape: sample_shape.clone(),
            cfg: *cfg,
            params: template.params(),
            plan: None,
        })
    }

    /// Execute a parallelism plan in every engine this factory builds.
    /// Applied leniently: entries naming layers the deploy transform
    /// dropped (data, loss) are skipped, but a stale entry — wrong layer
    /// type or extent, or an inexecutable strategy — fails the next
    /// [`EngineFactory::build`] with a typed error naming the layer.
    pub fn with_plan(mut self, plan: plan::Plan) -> Self {
        self.plan = Some(plan);
        self
    }

    /// Build one engine whose parameters are shared with every other
    /// engine from this factory.
    pub fn build(&self) -> Result<Engine<S>, ServeError> {
        let mut e = Engine::build(&self.train_spec, &self.sample_shape, &self.cfg)?;
        e.adopt_params(&self.params)?;
        if let Some(p) = &self.plan {
            plan::apply_to_net_lenient(p, &mut e.net)
                .map_err(|err| ServeError::Build(err.to_string()))?;
        }
        Ok(e)
    }

    /// Build `n` engines sharing one parameter set.
    pub fn build_n(&self, n: usize) -> Result<Vec<Engine<S>>, ServeError> {
        if n == 0 {
            return Err(ServeError::Build("need at least one replica".into()));
        }
        (0..n).map(|_| self.build()).collect()
    }

    /// Engine configuration the factory builds with.
    pub fn config(&self) -> &EngineConfig {
        &self.cfg
    }

    /// Logical bytes of the shared decoded parameter set (data + diff).
    pub fn params_bytes(&self) -> usize {
        self.params.iter().map(|p| p.bytes()).sum()
    }
}

/// Build `n` engine replicas from one spec and one snapshot. The snapshot
/// bytes are decoded once; replicas receive copy-on-write clones of the
/// decoded parameters (`Arc` inside `Blob`), so memory holds one weight
/// copy regardless of `n`.
pub fn build_replicas<S: Scalar>(
    train_spec: &NetSpec,
    sample_shape: &Shape,
    cfg: &EngineConfig,
    n_replicas: usize,
    weights: Option<&[u8]>,
) -> Result<Vec<Engine<S>>, ServeError> {
    EngineFactory::new(train_spec, sample_shape, cfg, weights)?.build_n(n_replicas)
}

#[cfg(test)]
mod tests {
    use super::*;

    const TRAIN: &str = r#"
name: t
layer {
  name: d
  type: Data
  batch: 4
  top: data
  top: label
}
layer {
  name: ip
  type: InnerProduct
  num_output: 3
  seed: 11
  bottom: data
  top: ip
}
layer {
  name: loss
  type: SoftmaxWithLoss
  bottom: ip
  bottom: label
  top: prob
}
"#;

    fn engine(max_batch: usize, threads: usize) -> Engine<f32> {
        let spec = NetSpec::parse(TRAIN).unwrap();
        Engine::build(
            &spec,
            &Shape::from(vec![6usize]),
            &EngineConfig {
                max_batch,
                n_threads: threads,
            },
        )
        .unwrap()
    }

    #[test]
    fn infer_batch_returns_per_sample_softmax() {
        let mut e = engine(4, 2);
        assert_eq!(e.output_name(), "prob");
        assert_eq!(e.output_len(), 3);
        let a = [0.3f32; 6];
        let b = [1.5f32; 6];
        let out = e.infer_batch(&[&a, &b]).unwrap();
        assert_eq!(out.len(), 2 * 3, "flat slice: n_samples x output_len");
        for o in out.chunks(3) {
            let sum: f32 = o.iter().sum();
            assert!((sum - 1.0).abs() < 1e-5, "softmax rows sum to 1, got {sum}");
        }
    }

    #[test]
    fn partial_batch_matches_full_position() {
        let mut e = engine(4, 2);
        let a = [0.7f32; 6];
        let alone = e.infer_one(&a).unwrap();
        let b = [2.0f32; 6];
        let pair = e.infer_batch(&[&a, &b]).unwrap();
        assert_eq!(
            alone,
            pair[..3].to_vec(),
            "batch position must not change the bits"
        );
    }

    #[test]
    fn rejects_bad_shapes() {
        let mut e = engine(2, 1);
        let short = [0.0f32; 3];
        assert!(matches!(
            e.infer_batch(&[&short]),
            Err(ServeError::BadInput(_))
        ));
        let ok = [0.0f32; 6];
        assert!(matches!(
            e.infer_batch(&[&ok, &ok, &ok]),
            Err(ServeError::BadInput(_))
        ));
        assert!(matches!(e.infer_batch(&[]), Err(ServeError::BadInput(_))));
    }

    #[test]
    fn malformed_spec_is_a_build_error_not_a_panic() {
        // The Power layer consumes the Accuracy layer's top; Accuracy is
        // dropped by the deploy transform, so the surviving layer has a
        // dangling bottom — Engine::build must surface ServeError::Build.
        const BAD: &str = r#"
name: bad
layer {
  name: d
  type: Data
  batch: 2
  top: data
  top: label
}
layer {
  name: acc
  type: Accuracy
  bottom: data
  bottom: label
  top: acc
}
layer {
  name: pow
  type: Power
  bottom: acc
  top: out
}
"#;
        let spec = NetSpec::parse(BAD).unwrap();
        let r = Engine::<f32>::build(
            &spec,
            &Shape::from(vec![6usize]),
            &EngineConfig {
                max_batch: 2,
                n_threads: 1,
            },
        );
        match r {
            Err(e) => assert!(matches!(e, ServeError::Build(_)), "got: {e}"),
            Ok(_) => panic!("malformed deploy spec must not build"),
        }
    }

    #[test]
    fn factory_plan_applies_leniently_and_keeps_bits() {
        use layers::strategy::LayerStrategy;
        let spec = NetSpec::parse(TRAIN).unwrap();
        let cfg = EngineConfig {
            max_batch: 4,
            n_threads: 2,
        };
        let shape = Shape::from(vec![6usize]);
        let mk_plan = |extent: usize| plan::Plan {
            net_name: "t".into(),
            threads: 8,
            model: "test".into(),
            entries: vec![
                // Names a training-only layer: lenient apply skips it.
                plan::PlanEntry {
                    name: "d".into(),
                    layer_type: "Data".into(),
                    extent: 0,
                    strategy: LayerStrategy::SampleSplit,
                },
                plan::PlanEntry {
                    name: "ip".into(),
                    layer_type: "InnerProduct".into(),
                    extent,
                    strategy: LayerStrategy::OutputSplit { ways: 3 },
                },
                // The deploy transform rewrites this layer's type to
                // Softmax in place: lenient apply must skip it, not call
                // the plan stale.
                plan::PlanEntry {
                    name: "loss".into(),
                    layer_type: "SoftmaxWithLoss".into(),
                    extent: 0,
                    strategy: LayerStrategy::SampleSplit,
                },
            ],
        };
        let plain = EngineFactory::<f32>::new(&spec, &shape, &cfg, None).unwrap();
        let planned = EngineFactory::<f32>::new(&spec, &shape, &cfg, None)
            .unwrap()
            .with_plan(mk_plan(3));
        let x = [0.4f32; 6];
        let want = plain.build().unwrap().infer_one(&x).unwrap();
        let got = planned.build().unwrap().infer_one(&x).unwrap();
        assert_eq!(got, want, "a plan must never change the served bits");

        // A stale plan (extent changed since planning) fails the build
        // with an error naming the layer.
        let stale = EngineFactory::<f32>::new(&spec, &shape, &cfg, None)
            .unwrap()
            .with_plan(mk_plan(5));
        match stale.build() {
            Err(ServeError::Build(msg)) => {
                assert!(msg.contains("ip") && msg.contains("stale"), "{msg}")
            }
            Err(other) => panic!("want a Build error, got {other}"),
            Ok(_) => panic!("stale plan must fail the build"),
        }
    }

    #[test]
    fn factory_replicas_share_one_decoded_parameter_set() {
        let spec = NetSpec::parse(TRAIN).unwrap();
        let cfg = EngineConfig {
            max_batch: 4,
            n_threads: 1,
        };
        let factory =
            EngineFactory::<f32>::new(&spec, &Shape::from(vec![6usize]), &cfg, None).unwrap();
        let engines = factory.build_n(3).unwrap();
        // Every replica's parameter buffers alias replica 0's.
        let base = engines[0].params();
        for e in &engines[1..] {
            for (a, b) in base.iter().zip(e.params()) {
                assert!(a.data_shared_with(&b), "weights are one allocation");
                assert!(b.diff_shared_with(a), "zeroed diffs shared too");
            }
            assert_eq!(e.params_unique_bytes(), 0, "replica owns no weight bytes");
        }
        // Inference does not detach the shared weights.
        let mut engines = engines;
        let x = [0.4f32; 6];
        let want = engines[0].infer_one(&x).unwrap();
        for e in engines.iter_mut() {
            assert_eq!(e.infer_one(&x).unwrap(), want, "replicas agree bitwise");
        }
        let base = engines[0].params();
        for e in &engines[1..] {
            for (a, b) in base.iter().zip(e.params()) {
                assert!(a.data_shared_with(&b), "forward pass must not detach");
            }
        }
        // Loading fresh weights into one replica detaches only that one.
        let mut snap = Vec::new();
        {
            let spec = NetSpec::parse(TRAIN).unwrap();
            let donor = net::Net::<f32>::from_spec_with_inputs(
                &crate::deploy::deploy_spec(&spec).unwrap().spec,
                None,
                &[("data".into(), Shape::from(vec![4usize, 6]))],
            )
            .unwrap();
            net::save_params(&donor, &mut snap).unwrap();
        }
        engines[1].load_weights(snap.as_slice()).unwrap();
        let p0 = engines[0].params();
        let p1 = engines[1].params();
        let p2 = engines[2].params();
        for ((a, b), c) in p0.iter().zip(&p1).zip(&p2) {
            assert!(!a.data_shared_with(b), "loaded replica detached");
            assert!(a.data_shared_with(c), "bystander replicas still share");
        }
    }
}
