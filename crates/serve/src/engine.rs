//! The inference engine: one deploy net + one persistent thread team.
//!
//! An [`Engine`] is built once (spec transform, blob allocation, workspace
//! sizing) and then serves `infer_batch` calls for its whole lifetime —
//! the serving analogue of the paper's persistent-team training loop,
//! where thread creation and workspace allocation are hoisted out of the
//! hot path.
//!
//! The engine's input blob is fixed at `[max_batch, sample...]`; partial
//! batches are zero-padded up to `max_batch` and only the first `n` output
//! rows are read back. Forward runs under `Phase::Test` (dropout disabled)
//! with canonical-group reduction, so results are bit-identical for any
//! team size — the property the serving determinism test pins down.

use crate::deploy::deploy_spec;
use crate::ServeError;
use blob::Shape;
use layers::ctx::{Phase, ReductionMode};
use mmblas::Scalar;
use net::{Net, NetSpec, RunConfig};
use omprt::{Schedule, ThreadTeam};
use std::io::Read;

/// Construction-time engine parameters.
#[derive(Debug, Clone, Copy)]
pub struct EngineConfig {
    /// Fixed batch capacity of the input blob (the batcher's `max_batch`).
    pub max_batch: usize,
    /// Thread-team size for the coalesced layer loops.
    pub n_threads: usize,
}

/// A forward-only network bound to a persistent thread team.
pub struct Engine<S: Scalar = f32> {
    net: Net<S>,
    team: ThreadTeam,
    run: RunConfig,
    input_name: String,
    output_name: String,
    max_batch: usize,
    sample_len: usize,
    output_len: usize,
    input_buf: Vec<S>,
}

impl<S: Scalar> Engine<S> {
    /// Build an engine from a *training* spec: apply the deploy transform,
    /// register the input blob at `[max_batch, sample_shape...]`, construct
    /// the net, and spin up the thread team. Weights start at their random
    /// initialization; load a snapshot with [`Engine::load_weights`].
    pub fn build(
        train_spec: &NetSpec,
        sample_shape: &Shape,
        cfg: &EngineConfig,
    ) -> Result<Self, ServeError> {
        if cfg.max_batch == 0 {
            return Err(ServeError::Build("max_batch must be >= 1".into()));
        }
        let deploy = deploy_spec(train_spec)?;
        let mut dims = Vec::with_capacity(1 + sample_shape.ndim());
        dims.push(cfg.max_batch);
        dims.extend_from_slice(sample_shape.dims());
        let input_shape = Shape::from(dims);

        let mut net =
            Net::from_spec_with_inputs(&deploy.spec, None, &[(deploy.input.clone(), input_shape)])
                .map_err(|e| ServeError::Build(e.to_string()))?;
        let output_name = net
            .output_names()
            .last()
            .map(|s| s.to_string())
            .ok_or_else(|| ServeError::Build("deploy net has no output blob".into()))?;
        let sample_len = sample_shape.count();
        let output_len = net
            .blob(&output_name)
            .expect("output blob exists")
            .sample_len();

        let team = ThreadTeam::new(cfg.n_threads.max(1));
        let run = RunConfig {
            schedule: Schedule::Static,
            // Canonical groups make the (forward-only) pass bit-identical
            // across team sizes, matching the training replicas.
            reduction: ReductionMode::Canonical { groups: 16 },
            phase: Phase::Test,
        };
        // Size the workspace now, not on the first request.
        net.ensure_workspace(team.size(), run.reduction);

        Ok(Self {
            input_buf: vec![S::ZERO; cfg.max_batch * sample_len],
            net,
            team,
            run,
            input_name: deploy.input,
            output_name,
            max_batch: cfg.max_batch,
            sample_len,
            output_len,
        })
    }

    /// Load a `CGDN` snapshot into the engine's parameters.
    pub fn load_weights(&mut self, r: impl Read) -> Result<(), ServeError> {
        net::load_params(&mut self.net, r).map_err(|e| ServeError::Weights(e.to_string()))
    }

    /// Run one micro-batch of up to [`Engine::max_batch`] samples; returns
    /// one output vector (length [`Engine::output_len`]) per sample, in
    /// input order. The unused tail of the input blob is zeroed, so a
    /// partial batch produces the same bits regardless of what ran before.
    pub fn infer_batch(&mut self, samples: &[&[S]]) -> Result<Vec<Vec<S>>, ServeError> {
        let n = samples.len();
        if n == 0 || n > self.max_batch {
            return Err(ServeError::BadInput(format!(
                "batch of {n} samples, engine capacity is 1..={}",
                self.max_batch
            )));
        }
        for (i, s) in samples.iter().enumerate() {
            if s.len() != self.sample_len {
                return Err(ServeError::BadInput(format!(
                    "sample {i} has {} values, engine expects {}",
                    s.len(),
                    self.sample_len
                )));
            }
            self.input_buf[i * self.sample_len..(i + 1) * self.sample_len].copy_from_slice(s);
        }
        self.input_buf[n * self.sample_len..].fill(S::ZERO);

        self.net
            .set_input(&self.input_name, &self.input_buf)
            .map_err(|e| ServeError::Build(e.to_string()))?;
        self.net.forward(&self.team, &self.run);

        let out = self
            .net
            .blob(&self.output_name)
            .expect("output blob exists");
        Ok((0..n).map(|i| out.sample_data(i).to_vec()).collect())
    }

    /// Batch capacity of the input blob.
    pub fn max_batch(&self) -> usize {
        self.max_batch
    }

    /// Values per input sample.
    pub fn sample_len(&self) -> usize {
        self.sample_len
    }

    /// Values per output sample.
    pub fn output_len(&self) -> usize {
        self.output_len
    }

    /// Name of the externally-fed input blob.
    pub fn input_name(&self) -> &str {
        &self.input_name
    }

    /// Name of the demuxed output blob.
    pub fn output_name(&self) -> &str {
        &self.output_name
    }

    /// Thread-team size.
    pub fn team_size(&self) -> usize {
        self.team.size()
    }

    /// Architecture table of the deploy net.
    pub fn summary(&self) -> String {
        self.net.summary()
    }
}

/// Build `n` engine replicas from one spec and one snapshot. The snapshot
/// bytes are read once and decoded into each replica; parameters are
/// read-only from then on. (True buffer-level sharing would need `Arc`
/// inside `Blob`; replicating the decoded weights keeps the training
/// crates untouched at the cost of one parameter copy per replica.)
pub fn build_replicas<S: Scalar>(
    train_spec: &NetSpec,
    sample_shape: &Shape,
    cfg: &EngineConfig,
    n_replicas: usize,
    weights: Option<&[u8]>,
) -> Result<Vec<Engine<S>>, ServeError> {
    if n_replicas == 0 {
        return Err(ServeError::Build("need at least one replica".into()));
    }
    let mut engines = Vec::with_capacity(n_replicas);
    for _ in 0..n_replicas {
        let mut e = Engine::build(train_spec, sample_shape, cfg)?;
        if let Some(bytes) = weights {
            e.load_weights(bytes)?;
        }
        engines.push(e);
    }
    Ok(engines)
}

#[cfg(test)]
mod tests {
    use super::*;

    const TRAIN: &str = r#"
name: t
layer {
  name: d
  type: Data
  batch: 4
  top: data
  top: label
}
layer {
  name: ip
  type: InnerProduct
  num_output: 3
  seed: 11
  bottom: data
  top: ip
}
layer {
  name: loss
  type: SoftmaxWithLoss
  bottom: ip
  bottom: label
  top: prob
}
"#;

    fn engine(max_batch: usize, threads: usize) -> Engine<f32> {
        let spec = NetSpec::parse(TRAIN).unwrap();
        Engine::build(
            &spec,
            &Shape::from(vec![6usize]),
            &EngineConfig {
                max_batch,
                n_threads: threads,
            },
        )
        .unwrap()
    }

    #[test]
    fn infer_batch_returns_per_sample_softmax() {
        let mut e = engine(4, 2);
        assert_eq!(e.output_name(), "prob");
        assert_eq!(e.output_len(), 3);
        let a = [0.3f32; 6];
        let b = [1.5f32; 6];
        let outs = e.infer_batch(&[&a, &b]).unwrap();
        assert_eq!(outs.len(), 2);
        for o in &outs {
            let sum: f32 = o.iter().sum();
            assert!((sum - 1.0).abs() < 1e-5, "softmax rows sum to 1, got {sum}");
        }
    }

    #[test]
    fn partial_batch_matches_full_position() {
        let mut e = engine(4, 2);
        let a = [0.7f32; 6];
        let alone = e.infer_batch(&[&a]).unwrap();
        let b = [2.0f32; 6];
        let pair = e.infer_batch(&[&a, &b]).unwrap();
        assert_eq!(alone[0], pair[0], "batch position must not change the bits");
    }

    #[test]
    fn rejects_bad_shapes() {
        let mut e = engine(2, 1);
        let short = [0.0f32; 3];
        assert!(matches!(
            e.infer_batch(&[&short]),
            Err(ServeError::BadInput(_))
        ));
        let ok = [0.0f32; 6];
        assert!(matches!(
            e.infer_batch(&[&ok, &ok, &ok]),
            Err(ServeError::BadInput(_))
        ));
        assert!(matches!(e.infer_batch(&[]), Err(ServeError::BadInput(_))));
    }
}
