//! A bounded free-list of output buffers for the reply path.
//!
//! The batcher demuxes the engine's flat output slice into one buffer per
//! request. Allocating a fresh `Vec` per request made the allocator a
//! steady-state hot-path cost; instead, workers check buffers out of a
//! shared [`BufferPool`] and the client's [`OutputBuf`] hands them back on
//! drop. After warm-up the pool reaches its high-water mark and the reply
//! path stops allocating entirely.
//!
//! The pool is deliberately simple: one mutex around a `Vec<Vec<S>>` free
//! list. Checkout/return are a few dozen nanoseconds under the lock —
//! noise next to a forward pass — and the free list is capped so a burst
//! of in-flight requests can't pin memory forever.

use mmblas::Scalar;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Shared free-list of `Vec<S>` reply buffers.
///
/// Buffers are handed out as [`OutputBuf`]s which return themselves to the
/// pool on drop. The pool keeps at most `cap` idle buffers; returns beyond
/// that are dropped, so the pool's footprint tracks the in-flight
/// high-water mark, not the lifetime maximum.
pub struct BufferPool<S: Scalar = f32> {
    inner: Arc<PoolInner<S>>,
}

struct PoolInner<S: Scalar> {
    free: Mutex<Vec<Vec<S>>>,
    cap: usize,
    /// Buffers created because the free list was empty (allocations).
    misses: AtomicU64,
    /// Buffers served from the free list (no allocation).
    hits: AtomicU64,
}

impl<S: Scalar> BufferPool<S> {
    /// A pool that keeps at most `cap` idle buffers.
    pub fn new(cap: usize) -> Self {
        Self {
            inner: Arc::new(PoolInner {
                free: Mutex::new(Vec::with_capacity(cap.min(64))),
                cap: cap.max(1),
                misses: AtomicU64::new(0),
                hits: AtomicU64::new(0),
            }),
        }
    }

    /// Check out a buffer filled with `src` (length-adjusted to fit).
    /// Reuses an idle buffer when one is available, allocates otherwise.
    pub fn checkout_from(&self, src: &[S]) -> OutputBuf<S> {
        let reused = self.inner.free.lock().expect("pool lock").pop();
        let mut buf = match reused {
            Some(b) => {
                self.inner.hits.fetch_add(1, Ordering::Relaxed);
                b
            }
            None => {
                self.inner.misses.fetch_add(1, Ordering::Relaxed);
                Vec::with_capacity(src.len())
            }
        };
        buf.clear();
        buf.extend_from_slice(src);
        OutputBuf {
            buf: Some(buf),
            pool: Arc::clone(&self.inner),
        }
    }

    /// Buffers served without allocating (free-list hits).
    pub fn hits(&self) -> u64 {
        self.inner.hits.load(Ordering::Relaxed)
    }

    /// Buffers that had to be allocated (free-list misses). Steady state
    /// should hold this flat while [`BufferPool::hits`] climbs.
    pub fn misses(&self) -> u64 {
        self.inner.misses.load(Ordering::Relaxed)
    }

    /// Idle buffers currently parked in the free list.
    pub fn idle(&self) -> usize {
        self.inner.free.lock().expect("pool lock").len()
    }
}

impl<S: Scalar> Clone for BufferPool<S> {
    fn clone(&self) -> Self {
        Self {
            inner: Arc::clone(&self.inner),
        }
    }
}

/// An output vector checked out of a [`BufferPool`]; dereferences to the
/// output values and returns its storage to the pool when dropped.
pub struct OutputBuf<S: Scalar = f32> {
    buf: Option<Vec<S>>,
    pool: Arc<PoolInner<S>>,
}

impl<S: Scalar> OutputBuf<S> {
    /// Copy the output into an owned `Vec` (allocates; the buffer itself
    /// still returns to the pool on drop).
    pub fn to_vec(&self) -> Vec<S> {
        self.as_slice().to_vec()
    }

    /// The output values.
    pub fn as_slice(&self) -> &[S] {
        self.buf.as_deref().expect("buffer present until drop")
    }
}

impl<S: Scalar> std::ops::Deref for OutputBuf<S> {
    type Target = [S];
    fn deref(&self) -> &[S] {
        self.as_slice()
    }
}

impl<S: Scalar> std::fmt::Debug for OutputBuf<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_list().entries(self.as_slice()).finish()
    }
}

impl<S: Scalar> PartialEq for OutputBuf<S>
where
    S: PartialEq,
{
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl<S: Scalar> Drop for OutputBuf<S> {
    fn drop(&mut self) {
        let buf = self.buf.take().expect("dropped once");
        let mut free = self.pool.free.lock().expect("pool lock");
        if free.len() < self.pool.cap {
            free.push(buf);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn steady_state_does_not_allocate() {
        let pool = BufferPool::<f32>::new(8);
        let data = [1.0f32, 2.0, 3.0];
        // Warm-up: first checkout allocates.
        drop(pool.checkout_from(&data));
        assert_eq!(pool.misses(), 1);
        // Steady state: every further sequential checkout is a hit.
        for i in 0..100u32 {
            let vals = [i as f32; 3];
            let b = pool.checkout_from(&vals);
            assert_eq!(&*b, &vals);
        }
        assert_eq!(pool.misses(), 1, "no allocation after warm-up");
        assert_eq!(pool.hits(), 100);
    }

    #[test]
    fn concurrent_checkouts_allocate_then_park_up_to_cap() {
        let pool = BufferPool::<f32>::new(2);
        let a = pool.checkout_from(&[1.0]);
        let b = pool.checkout_from(&[2.0]);
        let c = pool.checkout_from(&[3.0]);
        assert_eq!(pool.misses(), 3, "three live at once => three allocations");
        drop(a);
        drop(b);
        drop(c);
        assert_eq!(pool.idle(), 2, "free list capped, extra buffer freed");
    }

    #[test]
    fn buffers_resize_to_fit_new_contents() {
        let pool = BufferPool::<f32>::new(4);
        drop(pool.checkout_from(&[1.0, 2.0, 3.0, 4.0]));
        let short = pool.checkout_from(&[9.0]);
        assert_eq!(short.len(), 1, "reused buffer takes the new length");
        assert_eq!(short.to_vec(), vec![9.0]);
    }
}
