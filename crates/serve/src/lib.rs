//! `serve` — a forward-only inference subsystem on top of `net`, `omprt`,
//! and the `CGDN` snapshot format.
//!
//! The training side of this repo parallelizes *within* a batch (the
//! paper's coarse-grain scheme); serving adds the missing outer loop: where
//! do batches come from when clients submit one sample at a time? The
//! answer is dynamic micro-batching — requests are collected from a bounded
//! queue into batches under a `max_batch` / `max_delay` policy, run through
//! a persistent [`Engine`], and demultiplexed back to their submitters.
//!
//! The pieces:
//!
//! - [`deploy::deploy_spec`] — rewrites a training prototxt into its
//!   forward-only twin (Caffe's deploy-net transform): the `Data` layer
//!   becomes an input blob, `SoftmaxWithLoss` becomes `Softmax`, and
//!   label-consuming layers (`Accuracy`, losses) are dropped. Learnable
//!   parameters are untouched, so training snapshots load unchanged.
//! - [`Engine`] — a deploy net + persistent [`omprt::ThreadTeam`] with a
//!   pre-sized workspace; [`Engine::infer_batch`] pads partial batches to
//!   the engine's fixed batch shape and slices per-sample outputs back out.
//! - [`Server`] — admission control (bounded queue, [`ServeError::Rejected`]
//!   on overload), per-request deadlines ([`ServeError::TimedOut`]), one
//!   worker thread per engine replica, and [`metrics::ServingMetrics`]
//!   (latency percentiles, batch-size distribution, throughput, CSV).
//! - [`EngineFactory`] — decodes a snapshot once and stamps out replicas
//!   whose parameter blobs share that one decoded copy (`Arc`-backed
//!   copy-on-write inside [`blob::Blob`]), so replica count does not
//!   multiply weight memory.
//! - [`Server::start_supervised`] — a supervisor thread that watches the
//!   `healthy_replicas` gauge and re-staffs dead replicas from the
//!   factory, bounded by [`SupervisorPolicy`] restarts per time window.
//! - [`pool::BufferPool`] / [`OutputBuf`] — recycled reply buffers; the
//!   steady-state reply path performs no per-request allocation.
//!
//! ```
//! use serve::{BatchPolicy, Engine, EngineConfig, Server};
//!
//! let spec = net::NetSpec::parse(
//!     "layer {\n name: d\n type: Data\n batch: 4\n top: data\n top: label\n}\n\
//!      layer {\n name: ip\n type: InnerProduct\n num_output: 3\n seed: 7\n bottom: data\n top: ip\n}\n\
//!      layer {\n name: loss\n type: SoftmaxWithLoss\n bottom: ip\n bottom: label\n top: loss\n}",
//! )
//! .unwrap();
//! let sample = blob::Shape::from(vec![5usize]);
//! let cfg = EngineConfig { max_batch: 4, n_threads: 2 };
//! let engine = Engine::<f32>::build(&spec, &sample, &cfg).unwrap();
//! let server = Server::start(vec![engine], BatchPolicy::default()).unwrap();
//! let probs = server.infer(&[0.5; 5]).unwrap();
//! assert_eq!(probs.len(), 3);
//! let report = server.shutdown();
//! assert_eq!(report.completed, 1);
//! ```

pub mod batcher;
pub mod deploy;
pub mod engine;
pub mod metrics;
pub mod pool;

pub use batcher::{BatchPolicy, Client, Server, SupervisorPolicy};
pub use deploy::{deploy_spec, DeploySpec};
pub use engine::{build_replicas, Engine, EngineConfig, EngineFactory};
pub use metrics::{ServingMetrics, ServingReport};
pub use pool::{BufferPool, OutputBuf};

use std::fmt;

/// Everything that can go wrong while building an engine or serving a
/// request.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// The admission queue was full — the request was never enqueued.
    /// Clients should back off and retry; this is the backpressure signal.
    Rejected,
    /// The request's deadline expired while it waited in the queue.
    TimedOut,
    /// The server shut down before the request completed.
    Closed,
    /// The request payload does not match the engine's sample shape.
    BadInput(String),
    /// Spec / deploy-transform / net-construction failure.
    Build(String),
    /// Snapshot loading failure.
    Weights(String),
    /// The replica executing the request's batch failed (e.g. panicked).
    /// The request was consumed; the caller decides whether to retry on
    /// the surviving replicas.
    Replica(String),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Rejected => write!(f, "request rejected: admission queue full"),
            ServeError::TimedOut => write!(f, "request timed out before execution"),
            ServeError::Closed => write!(f, "server closed"),
            ServeError::BadInput(m) => write!(f, "bad input: {m}"),
            ServeError::Build(m) => write!(f, "engine build failed: {m}"),
            ServeError::Weights(m) => write!(f, "weight loading failed: {m}"),
            ServeError::Replica(m) => write!(f, "replica failure: {m}"),
        }
    }
}

impl std::error::Error for ServeError {}
