//! Training-spec → deploy-spec transform.
//!
//! Caffe ships two prototxts per model (`train_val` and `deploy`); this
//! repo keeps one and derives the deploy form mechanically:
//!
//! - the `Data` layer is removed; its first top becomes the externally-fed
//!   *input* blob, its remaining tops (the label) become *aux* blobs that
//!   no deploy layer may consume;
//! - `SoftmaxWithLoss` becomes a plain `Softmax` over its first bottom,
//!   keeping the same top name;
//! - layers that exist only to consume labels (`Accuracy`,
//!   `EuclideanLoss`) are dropped.
//!
//! None of these carry learnable parameters, so the deploy net has exactly
//! the training net's parameter list and `CGDN` snapshots load unchanged.

use crate::ServeError;
use net::{LayerSpec, NetSpec};

/// A deploy-transformed spec plus the names the engine needs to wire I/O.
#[derive(Debug, Clone)]
pub struct DeploySpec {
    /// The forward-only network specification.
    pub spec: NetSpec,
    /// Name of the input blob (the `Data` layer's first top).
    pub input: String,
}

fn is_dropped_type(t: &str) -> bool {
    matches!(t, "Accuracy" | "EuclideanLoss")
}

/// Rewrite a training spec into its forward-only deploy twin.
///
/// # Errors
/// Fails when the spec has no `Data` layer (there is then no way to know
/// the input blob), or when a surviving layer consumes the label.
pub fn deploy_spec(train: &NetSpec) -> Result<DeploySpec, ServeError> {
    let data = train
        .layers
        .iter()
        .find(|l| l.layer_type == "Data")
        .ok_or_else(|| {
            ServeError::Build(format!(
                "spec '{}' has no Data layer to derive the input blob from",
                train.name
            ))
        })?;
    let input = data
        .tops
        .first()
        .ok_or_else(|| ServeError::Build(format!("Data layer '{}' declares no tops", data.name)))?
        .clone();
    // Label and any further Data tops are unavailable at inference time.
    let aux: Vec<&String> = data.tops.iter().skip(1).collect();

    let mut layers = Vec::with_capacity(train.layers.len());
    for l in &train.layers {
        if l.layer_type == "Data" || is_dropped_type(&l.layer_type) {
            continue;
        }
        let mut out = l.clone();
        if l.layer_type == "SoftmaxWithLoss" {
            out.layer_type = "Softmax".to_string();
            out.bottoms.truncate(1);
        }
        if let Some(bad) = out.bottoms.iter().find(|b| aux.contains(b)) {
            return Err(ServeError::Build(format!(
                "layer '{}' consumes label blob '{bad}', which does not exist \
                 at inference time",
                out.name
            )));
        }
        layers.push(out);
    }
    if layers.is_empty() {
        return Err(ServeError::Build(format!(
            "spec '{}' has no layers left after the deploy transform",
            train.name
        )));
    }
    Ok(DeploySpec {
        spec: NetSpec {
            name: format!("{}-deploy", train.name),
            layers,
        },
        input,
    })
}

/// True if the layer survives the deploy transform unchanged — exposed for
/// spec-audit tooling.
pub fn survives_deploy(l: &LayerSpec) -> bool {
    l.layer_type != "Data" && l.layer_type != "SoftmaxWithLoss" && !is_dropped_type(&l.layer_type)
}

#[cfg(test)]
mod tests {
    use super::*;

    const TRAIN: &str = r#"
name: t
layer {
  name: d
  type: Data
  batch: 8
  top: data
  top: label
}
layer {
  name: ip
  type: InnerProduct
  num_output: 4
  bottom: data
  top: ip
}
layer {
  name: loss
  type: SoftmaxWithLoss
  bottom: ip
  bottom: label
  top: prob
}
layer {
  name: acc
  type: Accuracy
  bottom: ip
  bottom: label
  top: acc
}
"#;

    #[test]
    fn transforms_lenet_style_spec() {
        let train = NetSpec::parse(TRAIN).unwrap();
        let d = deploy_spec(&train).unwrap();
        assert_eq!(d.input, "data");
        assert_eq!(d.spec.name, "t-deploy");
        let types: Vec<&str> = d
            .spec
            .layers
            .iter()
            .map(|l| l.layer_type.as_str())
            .collect();
        assert_eq!(types, vec!["InnerProduct", "Softmax"]);
        let softmax = &d.spec.layers[1];
        assert_eq!(softmax.bottoms, vec!["ip"]);
        assert_eq!(softmax.tops, vec!["prob"]);
    }

    #[test]
    fn rejects_spec_without_data_layer() {
        let spec = NetSpec::parse(
            "layer {\n name: ip\n type: InnerProduct\n num_output: 2\n bottom: x\n top: ip\n}",
        )
        .unwrap();
        let e = deploy_spec(&spec).unwrap_err();
        assert!(matches!(e, ServeError::Build(_)));
    }

    #[test]
    fn rejects_surviving_label_consumer() {
        let spec = NetSpec::parse(
            "layer {\n name: d\n type: Data\n batch: 2\n top: data\n top: label\n}\n\
             layer {\n name: ip\n type: InnerProduct\n num_output: 2\n bottom: label\n top: ip\n}",
        )
        .unwrap();
        let e = deploy_spec(&spec).unwrap_err();
        assert!(e.to_string().contains("label"));
    }
}
