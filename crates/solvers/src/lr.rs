//! Learning-rate schedules — Caffe's `lr_policy` values.

/// Learning-rate policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LrPolicy {
    /// Constant `base_lr`.
    Fixed,
    /// `base_lr * gamma^(iter / stepsize)` (integer division).
    Step {
        /// Decay factor per step.
        gamma: f64,
        /// Iterations per step.
        stepsize: u64,
    },
    /// `base_lr * (1 + gamma * iter)^(-power)` — LeNet's schedule.
    Inv {
        /// Growth rate inside the base.
        gamma: f64,
        /// Decay exponent.
        power: f64,
    },
    /// `base_lr * gamma^iter`.
    Exp {
        /// Per-iteration decay factor.
        gamma: f64,
    },
}

impl LrPolicy {
    /// Learning rate at iteration `iter`.
    pub fn lr(&self, base_lr: f64, iter: u64) -> f64 {
        match *self {
            LrPolicy::Fixed => base_lr,
            LrPolicy::Step { gamma, stepsize } => {
                base_lr * gamma.powi((iter / stepsize.max(1)) as i32)
            }
            LrPolicy::Inv { gamma, power } => base_lr * (1.0 + gamma * iter as f64).powf(-power),
            LrPolicy::Exp { gamma } => base_lr * gamma.powi(iter as i32),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_is_constant() {
        assert_eq!(LrPolicy::Fixed.lr(0.01, 0), 0.01);
        assert_eq!(LrPolicy::Fixed.lr(0.01, 1_000_000), 0.01);
    }

    #[test]
    fn step_decays_in_plateaus() {
        let p = LrPolicy::Step {
            gamma: 0.1,
            stepsize: 100,
        };
        assert_eq!(p.lr(1.0, 0), 1.0);
        assert_eq!(p.lr(1.0, 99), 1.0);
        assert!((p.lr(1.0, 100) - 0.1).abs() < 1e-12);
        assert!((p.lr(1.0, 250) - 0.01).abs() < 1e-12);
    }

    #[test]
    fn inv_matches_lenet_formula() {
        let p = LrPolicy::Inv {
            gamma: 1e-4,
            power: 0.75,
        };
        assert_eq!(p.lr(0.01, 0), 0.01);
        let want = 0.01 * (1.0 + 1e-4 * 500.0f64).powf(-0.75);
        assert!((p.lr(0.01, 500) - want).abs() < 1e-15);
        // Monotone decreasing.
        assert!(p.lr(0.01, 1000) < p.lr(0.01, 500));
    }

    #[test]
    fn exp_decays_geometrically() {
        let p = LrPolicy::Exp { gamma: 0.5 };
        assert_eq!(p.lr(1.0, 3), 0.125);
    }

    #[test]
    fn step_zero_stepsize_is_clamped() {
        let p = LrPolicy::Step {
            gamma: 0.5,
            stepsize: 0,
        };
        // Clamped to 1: gamma^iter.
        assert_eq!(p.lr(1.0, 2), 0.25);
    }
}
