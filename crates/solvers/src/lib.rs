//! `solvers` — training algorithms driving the DNN training loop
//! (Algorithm 1 of the paper).
//!
//! Caffe's three solvers from the paper's §2.1 are implemented with Caffe's
//! exact update rules: [`SolverType::Sgd`] (momentum SGD),
//! [`SolverType::Nesterov`], and [`SolverType::AdaGrad`], together with the
//! `fixed` / `step` / `inv` learning-rate policies.
//!
//! The solver itself is deliberately *sequential* — only the layer passes
//! are parallel. This is what makes the scheme convergence-invariant: no
//! training parameter (batch size, learning rate, update order) changes
//! with the thread count.

pub mod lr;

pub use lr::LrPolicy;

use blob::Blob;
use mmblas::Scalar;
use net::{Net, RunConfig};
use omprt::ThreadTeam;

/// Which update rule to apply. The paper's §2.1 lists SGD, AdaGrad and
/// Nesterov; RMSProp and AdaDelta are the two further solvers Caffe grew
/// soon after (extensions here).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolverType {
    /// Momentum SGD: `V = m*V + lr*g; W -= V`.
    Sgd,
    /// Nesterov accelerated gradient (Caffe's formulation).
    Nesterov,
    /// AdaGrad: `H += g^2; W -= lr * g / (sqrt(H) + eps)`.
    AdaGrad,
    /// RMSProp: `H = d*H + (1-d)*g^2; W -= lr * g / (sqrt(H) + eps)`,
    /// with decay `d` taken from `momentum` (Caffe's `rms_decay`).
    RmsProp,
    /// AdaDelta: accumulators of squared gradients and squared updates,
    /// decay from `momentum`; `lr` acts as a final scale (Caffe-style).
    AdaDelta,
}

/// Solver hyper-parameters (a Caffe solver prototxt equivalent).
#[derive(Debug, Clone)]
pub struct SolverConfig {
    /// Update rule.
    pub solver_type: SolverType,
    /// Base learning rate.
    pub base_lr: f64,
    /// Momentum (ignored by AdaGrad).
    pub momentum: f64,
    /// L2 weight decay added to every gradient.
    pub weight_decay: f64,
    /// Learning-rate schedule.
    pub lr_policy: LrPolicy,
    /// AdaGrad denominator epsilon.
    pub eps: f64,
    /// Scale all gradients down when their global L2 norm exceeds this
    /// (Caffe's `clip_gradients`); `None` disables clipping.
    pub clip_gradients: Option<f64>,
}

impl SolverConfig {
    /// Caffe's LeNet MNIST solver: SGD, base_lr 0.01, momentum 0.9,
    /// weight decay 5e-4, `inv` policy (gamma 1e-4, power 0.75).
    pub fn lenet() -> Self {
        Self {
            solver_type: SolverType::Sgd,
            base_lr: 0.01,
            momentum: 0.9,
            weight_decay: 5e-4,
            lr_policy: LrPolicy::Inv {
                gamma: 1e-4,
                power: 0.75,
            },
            eps: 1e-8,
            clip_gradients: None,
        }
    }

    /// Caffe's cifar10_full solver: SGD, base_lr 0.001, momentum 0.9,
    /// weight decay 4e-3, fixed policy.
    pub fn cifar() -> Self {
        Self {
            solver_type: SolverType::Sgd,
            base_lr: 0.001,
            momentum: 0.9,
            weight_decay: 4e-3,
            lr_policy: LrPolicy::Fixed,
            eps: 1e-8,
            clip_gradients: None,
        }
    }
}

/// A solver instance: hyper-parameters plus per-parameter history state.
pub struct Solver<S: Scalar = f32> {
    cfg: SolverConfig,
    /// Momentum / accumulated-square history, one buffer per parameter.
    history: Vec<Vec<S>>,
    iter: u64,
    /// Multiplier applied on top of the LR policy — 1.0 normally; the
    /// divergence guard drops it on rollback. Part of the saved state.
    lr_scale: f64,
}

impl<S: Scalar> Solver<S> {
    /// New solver at iteration 0.
    pub fn new(cfg: SolverConfig) -> Self {
        Self {
            cfg,
            history: Vec::new(),
            iter: 0,
            lr_scale: 1.0,
        }
    }

    /// Current iteration count.
    pub fn iteration(&self) -> u64 {
        self.iter
    }

    /// The configured hyper-parameters.
    pub fn config(&self) -> &SolverConfig {
        &self.cfg
    }

    /// Current learning-rate scale (1.0 unless dropped by a rollback).
    pub fn lr_scale(&self) -> f64 {
        self.lr_scale
    }

    /// Multiply the learning-rate scale by `factor` (the divergence
    /// guard's LR drop). The scale persists through [`Solver::save_state`].
    pub fn scale_lr(&mut self, factor: f64) {
        self.lr_scale *= factor;
    }

    /// Learning rate at iteration `it` under the configured policy,
    /// including the rollback scale.
    pub fn lr_at(&self, it: u64) -> f64 {
        self.cfg.lr_policy.lr(self.cfg.base_lr, it) * self.lr_scale
    }

    /// Advance the iteration counter without running a step — for drivers
    /// (the distributed coordinator) that assemble the gradient themselves
    /// and call [`Solver::apply_update_with_mults`] directly, then need the
    /// LR schedule to move exactly as [`Solver::step`] would have moved it.
    pub fn advance_iteration(&mut self) {
        self.iter += 1;
    }

    /// Run one training iteration: zero diffs, forward, backward, update.
    /// Returns the loss.
    pub fn step(&mut self, net: &mut Net<S>, team: &ThreadTeam, run: &RunConfig) -> S {
        net.set_iteration(self.iter);
        net.zero_param_diffs();
        let loss = net.forward(team, run);
        net.backward(team, run);
        let lr = self.lr_at(self.iter);
        let mults = net.param_lr_mults();
        {
            let _span = obs::trace::span("solver_update", "solver");
            self.apply_update_with_mults(net.learnable_params_mut(), lr, &mults);
        }
        self.iter += 1;
        loss
    }

    /// Run `n` iterations; returns the per-iteration losses.
    pub fn train(
        &mut self,
        net: &mut Net<S>,
        team: &ThreadTeam,
        run: &RunConfig,
        n: usize,
    ) -> Vec<S> {
        (0..n).map(|_| self.step(net, team, run)).collect()
    }

    fn ensure_history(&mut self, params: &[&mut Blob<S>]) {
        // AdaDelta keeps two accumulators per element (handled in the update
        // loop), so accept either length here.
        if self.history.len() == params.len()
            && self
                .history
                .iter()
                .zip(params)
                .all(|(h, p)| h.len() == p.count() || h.len() == 2 * p.count())
        {
            return;
        }
        self.history = params.iter().map(|p| vec![S::ZERO; p.count()]).collect();
    }

    /// Apply the configured update rule with a unit learning-rate
    /// multiplier for every parameter.
    pub fn apply_update(&mut self, params: Vec<&mut Blob<S>>, lr: f64) {
        let mults = vec![1.0; params.len()];
        self.apply_update_with_mults(params, lr, &mults);
    }

    /// Apply the configured update rule to every parameter, consuming the
    /// accumulated diffs. `lr_mults` scales the learning rate per parameter
    /// (Caffe's `lr_mult`); gradient clipping (if configured) is applied
    /// over the global L2 norm first. [`Solver::step`] calls this.
    ///
    /// # Panics
    /// Panics if `lr_mults.len() != params.len()`.
    pub fn apply_update_with_mults(
        &mut self,
        mut params: Vec<&mut Blob<S>>,
        lr: f64,
        lr_mults: &[f64],
    ) {
        assert_eq!(params.len(), lr_mults.len(), "one lr_mult per parameter");
        self.ensure_history(&params);
        // Global-norm gradient clipping (Caffe's clip_gradients).
        if let Some(clip) = self.cfg.clip_gradients {
            let sumsq: f64 = params
                .iter()
                .map(|p| {
                    p.diff()
                        .iter()
                        .map(|g| g.to_f64() * g.to_f64())
                        .sum::<f64>()
                })
                .sum();
            let norm = sumsq.sqrt();
            if norm > clip {
                let scale = S::from_f64(clip / norm);
                for p in params.iter_mut() {
                    mmblas::scal(scale, p.diff_mut());
                }
            }
        }
        let momentum = S::from_f64(self.cfg.momentum);
        let decay = S::from_f64(self.cfg.weight_decay);
        let eps = S::from_f64(self.cfg.eps);
        for ((p, h), &mult) in params.iter_mut().zip(&mut self.history).zip(lr_mults) {
            let lr = S::from_f64(lr * mult);
            let (data, diff) = p.data_diff_mut();
            match self.cfg.solver_type {
                SolverType::Sgd => {
                    for i in 0..data.len() {
                        let g = diff[i] + decay * data[i];
                        h[i] = momentum * h[i] + lr * g;
                        data[i] -= h[i];
                    }
                }
                SolverType::Nesterov => {
                    for i in 0..data.len() {
                        let g = diff[i] + decay * data[i];
                        let v_old = h[i];
                        h[i] = momentum * h[i] + lr * g;
                        data[i] -= (S::ONE + momentum) * h[i] - momentum * v_old;
                    }
                }
                SolverType::AdaGrad => {
                    for i in 0..data.len() {
                        let g = diff[i] + decay * data[i];
                        h[i] += g * g;
                        data[i] -= lr * g / (h[i].sqrt() + eps);
                    }
                }
                SolverType::RmsProp => {
                    let d = momentum;
                    for i in 0..data.len() {
                        let g = diff[i] + decay * data[i];
                        h[i] = d * h[i] + (S::ONE - d) * g * g;
                        data[i] -= lr * g / (h[i].sqrt() + eps);
                    }
                }
                SolverType::AdaDelta => {
                    // History stores both accumulators interleaved:
                    // even = E[g^2], odd = E[dx^2].
                    if h.len() != 2 * data.len() {
                        *h = vec![S::ZERO; 2 * data.len()];
                    }
                    let d = momentum;
                    for i in 0..data.len() {
                        let g = diff[i] + decay * data[i];
                        h[2 * i] = d * h[2 * i] + (S::ONE - d) * g * g;
                        let dx = -((h[2 * i + 1] + eps).sqrt() / (h[2 * i] + eps).sqrt()) * g;
                        h[2 * i + 1] = d * h[2 * i + 1] + (S::ONE - d) * dx * dx;
                        data[i] += lr * dx;
                    }
                }
            }
        }
    }
}

impl<S: Scalar> Solver<S> {
    /// Serialize the solver state — Caffe's `.solverstate` equivalent:
    /// iteration counter, LR-schedule position (the rollback scale; the
    /// policy itself is pure in the iteration), and the momentum/history
    /// blobs. Combine with `net::save_params` for a full checkpoint.
    ///
    /// Format (`CGSS` v2, little-endian): `magic | version u32 | iter u64
    /// | lr_scale f64 | n_buffers u32 | per buffer: len u32, values f64 x
    /// len`. v1 files (no `lr_scale` field) still load.
    pub fn save_state(&self, mut w: impl std::io::Write) -> std::io::Result<()> {
        w.write_all(b"CGSS")?;
        w.write_all(&2u32.to_le_bytes())?;
        w.write_all(&self.iter.to_le_bytes())?;
        w.write_all(&self.lr_scale.to_le_bytes())?;
        w.write_all(&(self.history.len() as u32).to_le_bytes())?;
        for h in &self.history {
            w.write_all(&(h.len() as u32).to_le_bytes())?;
            for &v in h {
                w.write_all(&v.to_f64().to_le_bytes())?;
            }
        }
        Ok(())
    }

    /// Restore state saved by [`Solver::save_state`] (v1 or v2).
    pub fn load_state(&mut self, mut r: impl std::io::Read) -> std::io::Result<()> {
        use std::io::{Error, ErrorKind};
        let bad = |m: &str| Error::new(ErrorKind::InvalidData, format!("solverstate: {m}"));
        let mut magic = [0u8; 4];
        r.read_exact(&mut magic)?;
        if &magic != b"CGSS" {
            return Err(bad("bad magic"));
        }
        let mut b4 = [0u8; 4];
        r.read_exact(&mut b4)?;
        let version = u32::from_le_bytes(b4);
        if version != 1 && version != 2 {
            return Err(bad(&format!("unsupported version {version}")));
        }
        let mut b8 = [0u8; 8];
        r.read_exact(&mut b8)?;
        let iter = u64::from_le_bytes(b8);
        let lr_scale = if version >= 2 {
            r.read_exact(&mut b8)?;
            let s = f64::from_le_bytes(b8);
            if !s.is_finite() || s <= 0.0 {
                return Err(bad(&format!("non-positive lr_scale {s}")));
            }
            s
        } else {
            1.0
        };
        r.read_exact(&mut b4)?;
        let n = u32::from_le_bytes(b4) as usize;
        let mut history = Vec::with_capacity(n);
        for _ in 0..n {
            r.read_exact(&mut b4)?;
            let len = u32::from_le_bytes(b4) as usize;
            let mut h = Vec::with_capacity(len);
            for _ in 0..len {
                r.read_exact(&mut b8)?;
                h.push(S::from_f64(f64::from_le_bytes(b8)));
            }
            history.push(h);
        }
        self.iter = iter;
        self.lr_scale = lr_scale;
        self.history = history;
        Ok(())
    }
}

/// Evaluate a network: run `batches` forward passes in test phase and
/// return `(mean loss, mean accuracy)` — accuracy is read from the blob
/// named `accuracy` if the net has one, otherwise `None`.
pub fn evaluate<S: Scalar>(
    net: &mut Net<S>,
    team: &ThreadTeam,
    run: &RunConfig,
    batches: usize,
) -> (S, Option<S>) {
    let test_run = RunConfig {
        phase: layers::Phase::Test,
        ..*run
    };
    let mut loss = S::ZERO;
    let mut acc = S::ZERO;
    let mut has_acc = false;
    for _ in 0..batches.max(1) {
        loss += net.forward(team, &test_run);
        if let Some(b) = net.blob("accuracy") {
            acc += b.data()[0];
            has_acc = true;
        }
    }
    let denom = S::from_usize(batches.max(1));
    (loss / denom, if has_acc { Some(acc / denom) } else { None })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn one_param(v: f32, g: f32) -> Blob<f32> {
        let mut b = Blob::from_data([1usize], vec![v]);
        b.diff_mut()[0] = g;
        b
    }

    fn cfg(t: SolverType) -> SolverConfig {
        SolverConfig {
            solver_type: t,
            base_lr: 0.1,
            momentum: 0.9,
            weight_decay: 0.0,
            lr_policy: LrPolicy::Fixed,
            eps: 1e-8,
            clip_gradients: None,
        }
    }

    #[test]
    fn sgd_momentum_accumulates() {
        let mut s: Solver<f32> = Solver::new(cfg(SolverType::Sgd));
        let mut p = one_param(1.0, 1.0);
        s.apply_update(vec![&mut p], 0.1);
        // V = 0.1, W = 0.9
        assert!((p.data()[0] - 0.9).abs() < 1e-6);
        p.diff_mut()[0] = 1.0;
        s.apply_update(vec![&mut p], 0.1);
        // V = 0.9*0.1 + 0.1 = 0.19, W = 0.71
        assert!((p.data()[0] - 0.71).abs() < 1e-6);
    }

    #[test]
    fn nesterov_first_step() {
        let mut s: Solver<f32> = Solver::new(cfg(SolverType::Nesterov));
        let mut p = one_param(1.0, 1.0);
        s.apply_update(vec![&mut p], 0.1);
        // V = 0.1; W -= 1.9*0.1 - 0.9*0 = 0.19
        assert!((p.data()[0] - 0.81).abs() < 1e-6);
    }

    #[test]
    fn adagrad_normalizes_by_history() {
        let mut s: Solver<f32> = Solver::new(cfg(SolverType::AdaGrad));
        let mut p = one_param(1.0, 2.0);
        s.apply_update(vec![&mut p], 0.1);
        // H = 4; step = 0.1 * 2/2 = 0.1
        assert!((p.data()[0] - 0.9).abs() < 1e-5);
        p.diff_mut()[0] = 2.0;
        s.apply_update(vec![&mut p], 0.1);
        // H = 8; step = 0.1 * 2/sqrt(8)
        let want = 0.9 - 0.1 * 2.0 / 8.0f32.sqrt();
        assert!((p.data()[0] - want).abs() < 1e-5);
    }

    #[test]
    fn weight_decay_pulls_toward_zero() {
        let mut c = cfg(SolverType::Sgd);
        c.momentum = 0.0;
        c.weight_decay = 0.5;
        let mut s: Solver<f32> = Solver::new(c);
        let mut p = one_param(2.0, 0.0);
        s.apply_update(vec![&mut p], 0.1);
        // g = 0 + 0.5*2 = 1; W = 2 - 0.1 = 1.9
        assert!((p.data()[0] - 1.9).abs() < 1e-6);
    }

    #[test]
    fn history_resizes_with_params() {
        let mut s: Solver<f32> = Solver::new(cfg(SolverType::Sgd));
        let mut p1 = one_param(1.0, 1.0);
        s.apply_update(vec![&mut p1], 0.1);
        let mut p1 = one_param(1.0, 1.0);
        let mut p2: Blob<f32> = Blob::from_data([3usize], vec![1.0; 3]);
        p2.diff_mut().copy_from_slice(&[1.0; 3]);
        s.apply_update(vec![&mut p1, &mut p2], 0.1);
        assert_eq!(s.history.len(), 2);
        assert_eq!(s.history[1].len(), 3);
    }
}

#[cfg(test)]
mod extra_tests {
    use super::*;

    fn param(vals: &[f32], grads: &[f32]) -> Blob<f32> {
        let mut b = Blob::from_data([vals.len()], vals.to_vec());
        b.diff_mut().copy_from_slice(grads);
        b
    }

    #[test]
    fn lr_mults_scale_per_parameter() {
        let cfg = SolverConfig {
            solver_type: SolverType::Sgd,
            base_lr: 0.1,
            momentum: 0.0,
            weight_decay: 0.0,
            lr_policy: LrPolicy::Fixed,
            eps: 1e-8,
            clip_gradients: None,
        };
        let mut s: Solver<f32> = Solver::new(cfg);
        let mut w = param(&[1.0], &[1.0]);
        let mut b = param(&[1.0], &[1.0]);
        s.apply_update_with_mults(vec![&mut w, &mut b], 0.1, &[1.0, 2.0]);
        assert!((w.data()[0] - 0.9).abs() < 1e-6);
        assert!((b.data()[0] - 0.8).abs() < 1e-6, "bias uses 2x lr");
    }

    #[test]
    fn gradient_clipping_rescales_global_norm() {
        let cfg = SolverConfig {
            solver_type: SolverType::Sgd,
            base_lr: 1.0,
            momentum: 0.0,
            weight_decay: 0.0,
            lr_policy: LrPolicy::Fixed,
            eps: 1e-8,
            clip_gradients: Some(1.0),
        };
        let mut s: Solver<f32> = Solver::new(cfg);
        // ||g|| = 5 across two blobs (3-4-0 triangle) -> scaled to 1.
        let mut a = param(&[0.0], &[3.0]);
        let mut b = param(&[0.0, 0.0], &[4.0, 0.0]);
        s.apply_update(vec![&mut a, &mut b], 1.0);
        assert!((a.data()[0] + 0.6).abs() < 1e-6, "{}", a.data()[0]);
        assert!((b.data()[0] + 0.8).abs() < 1e-6);
    }

    #[test]
    fn clipping_is_noop_below_threshold() {
        let cfg = SolverConfig {
            clip_gradients: Some(100.0),
            momentum: 0.0,
            weight_decay: 0.0,
            base_lr: 1.0,
            lr_policy: LrPolicy::Fixed,
            eps: 1e-8,
            solver_type: SolverType::Sgd,
        };
        let mut s: Solver<f32> = Solver::new(cfg);
        let mut a = param(&[0.0], &[3.0]);
        s.apply_update(vec![&mut a], 1.0);
        assert!((a.data()[0] + 3.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "one lr_mult per parameter")]
    fn mismatched_mults_panic() {
        let mut s: Solver<f32> = Solver::new(SolverConfig::lenet());
        let mut a = param(&[0.0], &[1.0]);
        s.apply_update_with_mults(vec![&mut a], 0.1, &[1.0, 1.0]);
    }
}

#[cfg(test)]
mod extended_solver_tests {
    use super::*;

    fn cfg(t: SolverType, momentum: f64) -> SolverConfig {
        SolverConfig {
            solver_type: t,
            base_lr: 0.1,
            momentum,
            weight_decay: 0.0,
            lr_policy: LrPolicy::Fixed,
            eps: 1e-8,
            clip_gradients: None,
        }
    }

    #[test]
    fn rmsprop_first_step_matches_formula() {
        let mut s: Solver<f64> = Solver::new(cfg(SolverType::RmsProp, 0.9));
        let mut p = Blob::from_data([1usize], vec![1.0]);
        p.diff_mut()[0] = 2.0;
        s.apply_update(vec![&mut p], 0.1);
        // H = 0.1*4 = 0.4; step = 0.1*2/sqrt(0.4)
        let want = 1.0 - 0.1 * 2.0 / (0.4f64.sqrt() + 1e-8);
        assert!((p.data()[0] - want).abs() < 1e-12, "{}", p.data()[0]);
    }

    #[test]
    fn rmsprop_history_decays_unlike_adagrad() {
        // After many identical gradients, AdaGrad's step shrinks toward 0
        // while RMSProp's stabilizes.
        let run = |t: SolverType| -> f64 {
            let mut s: Solver<f64> = Solver::new(cfg(t, 0.9));
            let mut p = Blob::from_data([1usize], vec![100.0]);
            let mut last_step = 0.0;
            for _ in 0..200 {
                let before = p.data()[0];
                p.diff_mut()[0] = 1.0;
                s.apply_update(vec![&mut p], 0.1);
                last_step = (before - p.data()[0]).abs();
            }
            last_step
        };
        let rms = run(SolverType::RmsProp);
        let ada = run(SolverType::AdaGrad);
        assert!(rms > 5.0 * ada, "rms {rms} vs adagrad {ada}");
    }

    #[test]
    fn adadelta_converges_on_quadratic() {
        // Minimize f(w) = w^2 with gradient 2w.
        // AdaDelta self-tunes its step from tiny initial values, so give it
        // room: 20k scalar steps is still instantaneous.
        let mut s: Solver<f64> = Solver::new(cfg(SolverType::AdaDelta, 0.95));
        let mut p = Blob::from_data([1usize], vec![5.0]);
        for _ in 0..20_000 {
            let g = 2.0 * p.data()[0];
            p.diff_mut()[0] = g;
            s.apply_update(vec![&mut p], 1.0);
        }
        assert!(p.data()[0].abs() < 1.0, "w = {}", p.data()[0]);
    }

    #[test]
    fn lr_scale_round_trips_and_scales_lr() {
        let mut s: Solver<f32> = Solver::new(cfg(SolverType::Sgd, 0.9));
        assert_eq!(s.lr_at(0), 0.1);
        s.scale_lr(0.5);
        s.scale_lr(0.5);
        assert!((s.lr_at(0) - 0.025).abs() < 1e-15);
        let mut buf = Vec::new();
        s.save_state(&mut buf).unwrap();
        let mut r: Solver<f32> = Solver::new(cfg(SolverType::Sgd, 0.9));
        r.load_state(buf.as_slice()).unwrap();
        assert_eq!(r.lr_scale(), 0.25);
    }

    #[test]
    fn v1_solver_state_still_loads() {
        // Hand-build a v1 state: iter 7, one 2-value history buffer.
        let mut buf = Vec::new();
        buf.extend_from_slice(b"CGSS");
        buf.extend_from_slice(&1u32.to_le_bytes());
        buf.extend_from_slice(&7u64.to_le_bytes());
        buf.extend_from_slice(&1u32.to_le_bytes());
        buf.extend_from_slice(&2u32.to_le_bytes());
        buf.extend_from_slice(&0.5f64.to_le_bytes());
        buf.extend_from_slice(&0.25f64.to_le_bytes());
        let mut s: Solver<f32> = Solver::new(cfg(SolverType::Sgd, 0.9));
        s.load_state(buf.as_slice()).unwrap();
        assert_eq!(s.iteration(), 7);
        assert_eq!(s.lr_scale(), 1.0);
        assert_eq!(s.history, vec![vec![0.5, 0.25]]);
    }

    #[test]
    fn corrupt_lr_scale_is_rejected() {
        let mut s: Solver<f32> = Solver::new(cfg(SolverType::Sgd, 0.9));
        let mut buf = Vec::new();
        s.save_state(&mut buf).unwrap();
        // lr_scale sits after magic(4) + version(4) + iter(8).
        buf[16..24].copy_from_slice(&f64::NAN.to_le_bytes());
        assert!(s.load_state(buf.as_slice()).is_err());
    }

    #[test]
    fn adadelta_history_holds_two_accumulators() {
        let mut s: Solver<f32> = Solver::new(cfg(SolverType::AdaDelta, 0.9));
        let mut p = Blob::from_data([3usize], vec![1.0; 3]);
        p.diff_mut().copy_from_slice(&[1.0; 3]);
        s.apply_update(vec![&mut p], 1.0);
        assert_eq!(s.history[0].len(), 6);
        // A second step must not re-zero the accumulators.
        p.diff_mut().copy_from_slice(&[1.0; 3]);
        s.apply_update(vec![&mut p], 1.0);
        assert_eq!(s.history[0].len(), 6);
        assert!(s.history[0][0] > 0.0);
    }
}
