//! `omprt` — a miniature OpenMP-style runtime.
//!
//! The PPoPP'16 paper expresses its coarse-grain parallelization with OpenMP
//! constructs: `#pragma omp parallel`, `#pragma omp for` with static
//! scheduling over *coalesced* loops, data privatization, and an `ordered`
//! loop for the gradient reduction (Algorithms 4-5). This crate implements
//! those constructs so the Rust layer code can be a faithful transliteration:
//!
//! * [`ThreadTeam`] — a persistent pool; [`ThreadTeam::parallel`] is
//!   `#pragma omp parallel`.
//! * [`Schedule`] + [`for_each_index`] — `#pragma omp for schedule(...)`.
//! * [`coalesce::Coalesce`] — the manual loop-coalescing transformation
//!   (`civ -> (s, d1, d2, ...)` decode functions `f_s`, `f_1`, ...).
//! * [`ordered::OrderedRegion`] — `#pragma omp for ordered` used to merge
//!   privatized gradients in thread order.
//! * [`sendptr::SendPtr`] and the safe disjoint-chunk helpers — the data
//!   privatization idioms.
//!
//! The static-schedule chunk math is pure and public so the `machine`
//! execution-model simulator distributes work exactly like the real runtime.
//!
//! ```
//! use omprt::{Schedule, ThreadTeam};
//! use std::sync::atomic::{AtomicUsize, Ordering};
//!
//! let team = ThreadTeam::new(4);
//! let hits = AtomicUsize::new(0);
//! // #pragma omp parallel for schedule(static)
//! team.parallel_for(100, Schedule::Static, |_ctx, _i| {
//!     hits.fetch_add(1, Ordering::Relaxed);
//! });
//! assert_eq!(hits.load(Ordering::Relaxed), 100);
//!
//! // #pragma omp parallel for reduction(+) — deterministic merge order.
//! let sum = team.parallel_reduce(10, Schedule::Static, 0usize, |i| i, |a, b| a + b);
//! assert_eq!(sum, 45);
//! ```

pub mod coalesce;
pub mod metrics;
pub mod ordered;
pub mod schedule;
pub mod sendptr;

pub use coalesce::Coalesce;
pub use metrics::ImbalanceReport;
pub use ordered::OrderedRegion;
pub use schedule::{for_each_index, static_chunk, Schedule};
pub use sendptr::SendPtr;

use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Barrier};
use std::thread::JoinHandle;

type Job = *const (dyn Fn(&WorkerCtx) + Sync);

struct JobSlot(UnsafeCell<Option<Job>>);
// SAFETY: the slot is only written by the master strictly before the start
// barrier and read by workers strictly after it; the barriers provide the
// happens-before edges and mutual exclusion. The stored pointer is only
// dereferenced while the owning closure is pinned on the master's stack.
unsafe impl Sync for JobSlot {}
unsafe impl Send for JobSlot {}

struct TeamShared {
    job: JobSlot,
    start: Barrier,
    end: Barrier,
    user_barrier: Barrier,
    shutdown: AtomicBool,
    turn: ordered::Turn,
    /// Shared claim counter for dynamic/guided worksharing loops.
    loop_counter: AtomicUsize,
    /// `#pragma omp critical` lock.
    critical: parking_lot::Mutex<()>,
    /// Claim flags for the `single` constructs of the current region,
    /// indexed by encounter order.
    singles: parking_lot::Mutex<Vec<bool>>,
}

impl TeamShared {
    fn new(size: usize) -> Self {
        Self {
            job: JobSlot(UnsafeCell::new(None)),
            start: Barrier::new(size),
            end: Barrier::new(size),
            user_barrier: Barrier::new(size),
            shutdown: AtomicBool::new(false),
            turn: ordered::Turn::new(),
            loop_counter: AtomicUsize::new(0),
            critical: parking_lot::Mutex::new(()),
            singles: parking_lot::Mutex::new(Vec::new()),
        }
    }
}

/// Per-thread context handed to the closure of [`ThreadTeam::parallel`] —
/// the equivalent of `omp_get_thread_num()` / `omp_get_num_threads()` plus
/// the in-region synchronization primitives.
pub struct WorkerCtx<'a> {
    /// This thread's id in `0..num_threads`.
    pub thread_id: usize,
    /// Team size.
    pub num_threads: usize,
    shared: &'a TeamShared,
    /// How many `single` constructs this thread has encountered in the
    /// current region (identifies the construct instance).
    singles_seen: std::cell::Cell<usize>,
}

impl WorkerCtx<'_> {
    /// `#pragma omp barrier` — all team threads must call it the same number
    /// of times.
    pub fn barrier(&self) {
        let _span = obs::trace::span("barrier_wait", "omprt");
        self.shared.user_barrier.wait();
    }

    /// Execute `f` in thread-id order (`#pragma omp ordered` over a loop of
    /// one iteration per thread, as in Algorithm 5 lines 22-24).
    ///
    /// Every team thread must call this the same number of times per region;
    /// each "round" runs threads 0, 1, ..., n-1 in order.
    pub fn ordered<R>(&self, f: impl FnOnce() -> R) -> R {
        self.shared
            .turn
            .run_ordered(self.thread_id, self.num_threads, f)
    }

    /// `#pragma omp critical` — run `f` under the team-wide mutual
    /// exclusion lock.
    pub fn critical<R>(&self, f: impl FnOnce() -> R) -> R {
        let _guard = self.shared.critical.lock();
        f()
    }

    /// `#pragma omp single` — exactly one thread (the first to arrive at
    /// this construct instance) runs `f`; every thread then waits at the
    /// implicit barrier. Returns `Some(result)` on the executing thread,
    /// `None` on the others.
    ///
    /// All team threads must encounter every `single` in the same order,
    /// like any OpenMP worksharing construct.
    pub fn single<R>(&self, f: impl FnOnce() -> R) -> Option<R> {
        let idx = self.singles_seen.get();
        self.singles_seen.set(idx + 1);
        let elected = {
            let mut claimed = self.shared.singles.lock();
            if claimed.len() <= idx {
                claimed.resize(idx + 1, false);
            }
            if claimed[idx] {
                false
            } else {
                claimed[idx] = true;
                true
            }
        };
        let r = if elected { Some(f()) } else { None };
        if self.num_threads > 1 {
            self.barrier();
        }
        r
    }

    pub(crate) fn loop_counter(&self) -> &AtomicUsize {
        &self.shared.loop_counter
    }
}

/// A persistent team of worker threads — `#pragma omp parallel` with the
/// team reused across regions (as an OpenMP runtime reuses its pool).
///
/// The calling thread participates as thread 0, so a team of size `n` spawns
/// `n - 1` OS threads. A team of size 1 executes regions inline with no
/// synchronization at all.
pub struct ThreadTeam {
    size: usize,
    shared: Option<Arc<TeamShared>>,
    handles: Vec<JoinHandle<()>>,
}

impl ThreadTeam {
    /// Create a team of `size` threads (including the caller).
    ///
    /// # Panics
    /// Panics if `size == 0`.
    pub fn new(size: usize) -> Self {
        assert!(size > 0, "ThreadTeam: size must be >= 1");
        if size == 1 {
            return Self {
                size,
                shared: None,
                handles: Vec::new(),
            };
        }
        let shared = Arc::new(TeamShared::new(size));
        let mut handles = Vec::with_capacity(size - 1);
        for tid in 1..size {
            let sh = Arc::clone(&shared);
            handles.push(
                std::thread::Builder::new()
                    .name(format!("omprt-worker-{tid}"))
                    .spawn(move || worker_loop(tid, size, &sh))
                    .expect("omprt: failed to spawn worker"),
            );
        }
        Self {
            size,
            shared: Some(shared),
            handles,
        }
    }

    /// Team size (`omp_get_num_threads()` inside a region).
    pub fn size(&self) -> usize {
        self.size
    }

    /// Run `f` on every team thread — `#pragma omp parallel`.
    ///
    /// Blocks until all threads have finished the region. Panics in worker
    /// threads abort the process (there is no cross-thread unwind recovery,
    /// matching OpenMP semantics where such programs are undefined).
    pub fn parallel<F>(&self, f: F)
    where
        F: Fn(&WorkerCtx) + Sync,
    {
        let Some(shared) = &self.shared else {
            // Size-1 team: run inline. A dummy shared block is still needed
            // for ordered/barrier calls, so build a cheap one.
            let dummy = TeamShared::new(1);
            let ctx = WorkerCtx {
                thread_id: 0,
                num_threads: 1,
                shared: &dummy,
                singles_seen: std::cell::Cell::new(0),
            };
            {
                let _span = obs::trace::span("region", "omprt");
                f(&ctx);
            }
            return;
        };

        shared.turn.reset();
        shared.singles.lock().clear();
        let job: &(dyn Fn(&WorkerCtx) + Sync) = &f;
        // SAFETY (lifetime erasure): the job pointer is consumed by workers
        // between the two barriers below; the master does not return from
        // this function until every worker has passed the end barrier, so
        // `f` outlives all uses.
        let erased: Job = unsafe { std::mem::transmute(job) };
        unsafe { *shared.job.0.get() = Some(erased) };
        shared.start.wait();
        let ctx = WorkerCtx {
            thread_id: 0,
            num_threads: self.size,
            shared,
            singles_seen: std::cell::Cell::new(0),
        };
        {
            let _span = obs::trace::span("region", "omprt");
            f(&ctx);
        }
        shared.end.wait();
        unsafe { *shared.job.0.get() = None };
    }

    /// Convenience: `#pragma omp parallel for schedule(sched)` over
    /// `0..n_iters`, invoking `body(ctx, i)` for each index.
    pub fn parallel_for<F>(&self, n_iters: usize, sched: Schedule, body: F)
    where
        F: Fn(&WorkerCtx, usize) + Sync,
    {
        self.parallel(|ctx| {
            for_each_index(ctx, n_iters, sched, |i| body(ctx, i));
        });
    }

    /// `#pragma omp parallel for reduction(...)`: map every index through
    /// `map` and fold with `combine`, merging the per-thread partials in
    /// thread-id order (deterministic for a fixed team size under the
    /// static schedules).
    pub fn parallel_reduce<V, M, C>(
        &self,
        n_iters: usize,
        sched: Schedule,
        identity: V,
        map: M,
        combine: C,
    ) -> V
    where
        V: Send + Clone,
        M: Fn(usize) -> V + Sync,
        C: Fn(V, V) -> V + Sync,
    {
        let partials: Vec<parking_lot::Mutex<Option<V>>> = (0..self.size)
            .map(|_| parking_lot::Mutex::new(None))
            .collect();
        self.parallel(|ctx| {
            // Threads that receive no iterations contribute no partial, so
            // `identity` need not be a true neutral element.
            let mut acc: Option<V> = None;
            for_each_index(ctx, n_iters, sched, |i| {
                let v = map(i);
                acc = Some(match acc.take() {
                    Some(a) => combine(a, v),
                    None => v,
                });
            });
            *partials[ctx.thread_id].lock() = acc;
        });
        let mut total: Option<V> = None;
        for p in partials {
            if let Some(v) = p.into_inner() {
                total = Some(match total.take() {
                    Some(a) => combine(a, v),
                    None => v,
                });
            }
        }
        total.unwrap_or(identity)
    }
}

impl Drop for ThreadTeam {
    fn drop(&mut self) {
        if let Some(shared) = &self.shared {
            shared.shutdown.store(true, Ordering::Release);
            shared.start.wait();
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

fn worker_loop(tid: usize, size: usize, shared: &TeamShared) {
    loop {
        shared.start.wait();
        if shared.shutdown.load(Ordering::Acquire) {
            return;
        }
        // SAFETY: written by master before the start barrier; master blocks
        // on the end barrier until we are done with it.
        let job = unsafe { (*shared.job.0.get()).expect("omprt: start without job") };
        let ctx = WorkerCtx {
            thread_id: tid,
            num_threads: size,
            shared,
            singles_seen: std::cell::Cell::new(0),
        };
        {
            let _span = obs::trace::span("region", "omprt");
            unsafe { (*job)(&ctx) };
        }
        shared.end.wait();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn size_one_runs_inline() {
        let team = ThreadTeam::new(1);
        let mut hits = 0;
        let cell = std::sync::Mutex::new(&mut hits);
        team.parallel(|ctx| {
            assert_eq!(ctx.thread_id, 0);
            assert_eq!(ctx.num_threads, 1);
            **cell.lock().unwrap() += 1;
        });
        assert_eq!(hits, 1);
    }

    #[test]
    fn all_threads_enter_region() {
        let team = ThreadTeam::new(4);
        let count = AtomicUsize::new(0);
        let seen = std::sync::Mutex::new(vec![false; 4]);
        team.parallel(|ctx| {
            count.fetch_add(1, Ordering::SeqCst);
            seen.lock().unwrap()[ctx.thread_id] = true;
        });
        assert_eq!(count.load(Ordering::SeqCst), 4);
        assert!(seen.lock().unwrap().iter().all(|&b| b));
    }

    #[test]
    fn team_is_reusable_across_regions() {
        let team = ThreadTeam::new(3);
        let count = AtomicUsize::new(0);
        for _ in 0..50 {
            team.parallel(|_| {
                count.fetch_add(1, Ordering::Relaxed);
            });
        }
        assert_eq!(count.load(Ordering::SeqCst), 150);
    }

    #[test]
    fn barrier_synchronizes_phases() {
        let team = ThreadTeam::new(4);
        let phase1 = AtomicUsize::new(0);
        let ok = AtomicUsize::new(0);
        team.parallel(|ctx| {
            phase1.fetch_add(1, Ordering::SeqCst);
            ctx.barrier();
            // After the barrier every thread must observe all 4 increments.
            if phase1.load(Ordering::SeqCst) == 4 {
                ok.fetch_add(1, Ordering::SeqCst);
            }
        });
        assert_eq!(ok.load(Ordering::SeqCst), 4);
    }

    #[test]
    fn parallel_for_covers_every_index_once() {
        let team = ThreadTeam::new(4);
        let n = 1003;
        let hits: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        for sched in [
            Schedule::Static,
            Schedule::StaticChunk(7),
            Schedule::Dynamic(5),
            Schedule::Guided,
        ] {
            for h in &hits {
                h.store(0, Ordering::Relaxed);
            }
            team.parallel_for(n, sched, |_, i| {
                hits[i].fetch_add(1, Ordering::Relaxed);
            });
            for (i, h) in hits.iter().enumerate() {
                assert_eq!(h.load(Ordering::Relaxed), 1, "index {i} under {sched:?}");
            }
        }
    }

    #[test]
    fn ordered_runs_in_thread_order() {
        let team = ThreadTeam::new(4);
        let order = std::sync::Mutex::new(Vec::new());
        team.parallel(|ctx| {
            ctx.ordered(|| {
                order.lock().unwrap().push(ctx.thread_id);
            });
        });
        assert_eq!(*order.lock().unwrap(), vec![0, 1, 2, 3]);
    }

    #[test]
    fn ordered_is_reusable_across_regions() {
        let team = ThreadTeam::new(3);
        for _ in 0..10 {
            let order = std::sync::Mutex::new(Vec::new());
            team.parallel(|ctx| {
                ctx.ordered(|| order.lock().unwrap().push(ctx.thread_id));
            });
            assert_eq!(*order.lock().unwrap(), vec![0, 1, 2]);
        }
    }

    #[test]
    fn critical_provides_mutual_exclusion() {
        let team = ThreadTeam::new(4);
        // A non-atomic counter: only safe because of critical.
        let counter = std::sync::Mutex::new(0usize);
        team.parallel(|ctx| {
            for _ in 0..100 {
                ctx.critical(|| {
                    let mut c = counter.lock().unwrap();
                    let v = *c;
                    // Widen the race window.
                    std::hint::black_box(v);
                    *c = v + 1;
                });
            }
        });
        assert_eq!(*counter.lock().unwrap(), 400);
    }

    #[test]
    fn single_runs_exactly_once_per_construct() {
        let team = ThreadTeam::new(4);
        let first = AtomicUsize::new(0);
        let second = AtomicUsize::new(0);
        let winners = AtomicUsize::new(0);
        team.parallel(|ctx| {
            if ctx
                .single(|| first.fetch_add(1, Ordering::SeqCst))
                .is_some()
            {
                winners.fetch_add(1, Ordering::SeqCst);
            }
            ctx.single(|| second.fetch_add(1, Ordering::SeqCst));
        });
        assert_eq!(first.load(Ordering::SeqCst), 1);
        assert_eq!(second.load(Ordering::SeqCst), 1);
        assert_eq!(winners.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn single_resets_between_regions() {
        let team = ThreadTeam::new(2);
        let hits = AtomicUsize::new(0);
        for _ in 0..5 {
            team.parallel(|ctx| {
                ctx.single(|| hits.fetch_add(1, Ordering::SeqCst));
            });
        }
        assert_eq!(hits.load(Ordering::SeqCst), 5);
    }

    #[test]
    fn single_on_team_of_one() {
        let team = ThreadTeam::new(1);
        team.parallel(|ctx| {
            assert_eq!(ctx.single(|| 7), Some(7));
        });
    }

    #[test]
    fn parallel_reduce_sums_correctly_under_every_schedule() {
        let team = ThreadTeam::new(3);
        let want: u64 = (0..1000u64).map(|i| i * i).sum();
        for sched in [
            Schedule::Static,
            Schedule::StaticChunk(13),
            Schedule::Dynamic(7),
            Schedule::Guided,
        ] {
            let got =
                team.parallel_reduce(1000, sched, 0u64, |i| (i as u64) * (i as u64), |a, b| a + b);
            assert_eq!(got, want, "{sched:?}");
        }
    }

    #[test]
    fn parallel_reduce_is_deterministic_for_fixed_team() {
        let team = ThreadTeam::new(4);
        // Float summation: thread-ordered merge must reproduce bit-for-bit.
        let run = || {
            team.parallel_reduce(
                4096,
                Schedule::Static,
                0.0f64,
                |i| 1.0 / (1.0 + i as f64),
                |a, b| a + b,
            )
        };
        assert_eq!(run().to_bits(), run().to_bits());
    }

    #[test]
    fn parallel_reduce_empty_range_is_identity() {
        let team = ThreadTeam::new(2);
        let got = team.parallel_reduce(0, Schedule::Static, 42i32, |_| 1, |a, b| a + b);
        assert_eq!(got, 42);
    }

    #[test]
    fn parallel_reduce_identity_not_overcounted() {
        // Even a non-neutral "identity" must not leak into non-empty
        // reductions (idle threads contribute nothing).
        let team = ThreadTeam::new(4);
        let got = team.parallel_reduce(2, Schedule::Static, 100i32, |i| i as i32, |a, b| a + b);
        assert_eq!(got, 1);
    }
}
