//! Work-distribution introspection: per-thread iteration counts and
//! imbalance metrics for a worksharing loop.
//!
//! The paper identifies *work unbalance* as a limiting factor of the
//! coarse-grain parallelization (§4.3) and motivates loop coalescing with
//! it. These helpers quantify that imbalance both analytically (static
//! schedules) and empirically (recorded runs).

use crate::schedule::{static_chunk, static_chunked_count, Schedule};

/// Imbalance summary for one work distribution.
#[derive(Debug, Clone, PartialEq)]
pub struct ImbalanceReport {
    /// Work units assigned to each thread.
    pub per_thread: Vec<usize>,
    /// Maximum over threads.
    pub max: usize,
    /// Minimum over threads.
    pub min: usize,
    /// Mean work per thread.
    pub mean: f64,
    /// `max / mean` — 1.0 is perfectly balanced; the parallel-region time is
    /// proportional to `max`, so this is the slowdown factor vs. ideal.
    pub imbalance_factor: f64,
}

impl ImbalanceReport {
    /// Build a report from per-thread work-unit counts.
    pub fn from_counts(per_thread: Vec<usize>) -> Self {
        assert!(!per_thread.is_empty(), "ImbalanceReport: no threads");
        let max = *per_thread.iter().max().unwrap();
        let min = *per_thread.iter().min().unwrap();
        let mean = per_thread.iter().sum::<usize>() as f64 / per_thread.len() as f64;
        let imbalance_factor = if mean > 0.0 { max as f64 / mean } else { 1.0 };
        Self {
            per_thread,
            max,
            min,
            mean,
            imbalance_factor,
        }
    }
}

/// Analytic per-thread work (in `units_per_iter` units) for the static
/// schedules; `None` for dynamic/guided, whose distribution is runtime
/// dependent.
pub fn analytic_distribution(
    sched: Schedule,
    n_iters: usize,
    nthreads: usize,
    units_per_iter: usize,
) -> Option<ImbalanceReport> {
    let counts: Vec<usize> = match sched {
        Schedule::Static => (0..nthreads)
            .map(|t| static_chunk(t, nthreads, n_iters).len() * units_per_iter)
            .collect(),
        Schedule::StaticChunk(c) => (0..nthreads)
            .map(|t| static_chunked_count(t, nthreads, n_iters, c) * units_per_iter)
            .collect(),
        Schedule::Dynamic(_) | Schedule::Guided => return None,
    };
    Some(ImbalanceReport::from_counts(counts))
}

/// Empirically measure the per-thread iteration counts of a worksharing
/// loop by running it on a real team — works for every schedule, including
/// the runtime-dependent dynamic/guided ones.
pub fn measure_distribution(
    team: &crate::ThreadTeam,
    n_iters: usize,
    sched: Schedule,
) -> ImbalanceReport {
    use std::sync::atomic::{AtomicUsize, Ordering};
    let counts: Vec<AtomicUsize> = (0..team.size()).map(|_| AtomicUsize::new(0)).collect();
    team.parallel_for(n_iters, sched, |ctx, _i| {
        counts[ctx.thread_id].fetch_add(1, Ordering::Relaxed);
    });
    ImbalanceReport::from_counts(counts.iter().map(|c| c.load(Ordering::Relaxed)).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measured_static_matches_analytic() {
        let team = crate::ThreadTeam::new(4);
        for n in [0usize, 7, 64, 101] {
            let measured = measure_distribution(&team, n, Schedule::Static);
            let analytic = analytic_distribution(Schedule::Static, n, 4, 1).unwrap();
            assert_eq!(measured.per_thread, analytic.per_thread, "n={n}");
        }
    }

    #[test]
    fn measured_dynamic_covers_all_iterations() {
        let team = crate::ThreadTeam::new(3);
        for sched in [Schedule::Dynamic(5), Schedule::Guided] {
            let r = measure_distribution(&team, 200, sched);
            assert_eq!(r.per_thread.iter().sum::<usize>(), 200, "{sched:?}");
        }
    }

    #[test]
    fn balanced_loop_has_factor_one() {
        let r = analytic_distribution(Schedule::Static, 64, 8, 1).unwrap();
        assert_eq!(r.max, 8);
        assert_eq!(r.min, 8);
        assert!((r.imbalance_factor - 1.0).abs() < 1e-12);
    }

    #[test]
    fn uncoalesced_batch_loop_is_unbalanced_on_12_threads() {
        // The paper's motivating case: 64 heavy iterations on 12 threads.
        let r = analytic_distribution(Schedule::Static, 64, 12, 1000).unwrap();
        assert_eq!(r.max, 6000);
        assert_eq!(r.min, 5000);
        assert!(r.imbalance_factor > 1.1);
        // Coalescing the same work into 64_000 light iterations fixes it.
        let c = analytic_distribution(Schedule::Static, 64_000, 12, 1).unwrap();
        assert!(c.imbalance_factor < 1.001);
    }

    #[test]
    fn dynamic_has_no_analytic_distribution() {
        assert!(analytic_distribution(Schedule::Dynamic(4), 10, 2, 1).is_none());
        assert!(analytic_distribution(Schedule::Guided, 10, 2, 1).is_none());
    }

    #[test]
    fn report_from_counts() {
        let r = ImbalanceReport::from_counts(vec![4, 2]);
        assert_eq!(r.max, 4);
        assert_eq!(r.min, 2);
        assert!((r.mean - 3.0).abs() < 1e-12);
        assert!((r.imbalance_factor - 4.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "no threads")]
    fn empty_counts_panic() {
        let _ = ImbalanceReport::from_counts(vec![]);
    }
}
