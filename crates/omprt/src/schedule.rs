//! Worksharing loop schedules — `#pragma omp for schedule(...)`.
//!
//! The static chunk math is exposed as pure functions so that the `machine`
//! execution-model simulator distributes iterations *identically* to the
//! real runtime.

use crate::WorkerCtx;
use std::ops::Range;
use std::sync::atomic::Ordering;

/// Loop scheduling policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Schedule {
    /// `schedule(static)`: one contiguous chunk per thread (OpenMP default,
    /// and the paper's choice).
    Static,
    /// `schedule(static, chunk)`: fixed-size chunks dealt round-robin.
    StaticChunk(usize),
    /// `schedule(dynamic, chunk)`: threads pull chunks from a shared queue.
    Dynamic(usize),
    /// `schedule(guided)`: dynamic with exponentially shrinking chunks.
    Guided,
}

/// Contiguous range of iterations thread `tid` receives under
/// `schedule(static)` for a loop of `n` iterations on `nthreads` threads.
///
/// Matches the usual OpenMP runtime convention: the first `n % nthreads`
/// threads receive one extra iteration.
pub fn static_chunk(tid: usize, nthreads: usize, n: usize) -> Range<usize> {
    debug_assert!(tid < nthreads);
    let base = n / nthreads;
    let extra = n % nthreads;
    let start = tid * base + tid.min(extra);
    let len = base + usize::from(tid < extra);
    start..start + len
}

/// All per-thread ranges under `schedule(static)` — used by the imbalance
/// metrics and the machine simulator.
pub fn static_assignment(nthreads: usize, n: usize) -> Vec<Range<usize>> {
    (0..nthreads)
        .map(|t| static_chunk(t, nthreads, n))
        .collect()
}

/// Deterministic serial projection of the chunks each thread claims under
/// `sched` for a loop of `n` iterations on `nthreads` threads — the pure
/// chunk math with no team, for the machine simulator, the imbalance
/// metrics, and the planner's cost oracle.
///
/// For [`Schedule::Static`] and [`Schedule::StaticChunk`] this is exactly
/// the runtime's assignment. For the dynamic schedules the *chunk
/// boundaries* are exactly the sequence the shared-counter loop generates
/// ([`Schedule::Guided`] shrinks each chunk to `(remaining / 2·nthreads)`,
/// floor 1); which thread claims which chunk races at runtime, so the
/// projection deals them round-robin in claim order.
pub fn static_projection(sched: Schedule, nthreads: usize, n: usize) -> Vec<Vec<Range<usize>>> {
    let nt = nthreads.max(1);
    let mut per_thread: Vec<Vec<Range<usize>>> = vec![Vec::new(); nt];
    let mut deal = |k: usize, r: Range<usize>| {
        if !r.is_empty() {
            per_thread[k % nt].push(r);
        }
    };
    match sched {
        Schedule::Static => {
            for t in 0..nt {
                deal(t, static_chunk(t, nt, n));
            }
        }
        Schedule::StaticChunk(chunk) | Schedule::Dynamic(chunk) => {
            let chunk = chunk.max(1);
            let mut start = 0;
            let mut k = 0;
            while start < n {
                let end = (start + chunk).min(n);
                deal(k, start..end);
                start = end;
                k += 1;
            }
        }
        Schedule::Guided => {
            let mut start = 0;
            let mut k = 0;
            while start < n {
                let chunk = ((n - start) / (2 * nt)).max(1);
                let end = (start + chunk).min(n);
                deal(k, start..end);
                start = end;
                k += 1;
            }
        }
    }
    per_thread
}

/// Iteration count thread `tid` receives under `schedule(static, chunk)`.
pub fn static_chunked_count(tid: usize, nthreads: usize, n: usize, chunk: usize) -> usize {
    let chunk = chunk.max(1);
    let mut total = 0;
    let mut start = tid * chunk;
    while start < n {
        total += chunk.min(n - start);
        start += nthreads * chunk;
    }
    total
}

/// Execute `body(i)` for this thread's share of `0..n` under `sched`, with
/// the implicit end-of-worksharing barrier (OpenMP default).
///
/// Must be encountered by **all** threads of the team, like any OpenMP
/// worksharing construct; otherwise the team deadlocks at the barrier.
pub fn for_each_index(ctx: &WorkerCtx, n: usize, sched: Schedule, mut body: impl FnMut(usize)) {
    run_nowait(ctx, n, sched, &mut body);
    if ctx.num_threads > 1 {
        ctx.barrier();
    }
}

/// [`for_each_index`] without the trailing barrier — `nowait`. Only valid
/// for the static schedules, which need no shared loop state.
///
/// # Panics
/// Panics for [`Schedule::Dynamic`]/[`Schedule::Guided`].
pub fn for_each_index_nowait(
    ctx: &WorkerCtx,
    n: usize,
    sched: Schedule,
    mut body: impl FnMut(usize),
) {
    assert!(
        matches!(sched, Schedule::Static | Schedule::StaticChunk(_)),
        "nowait loops require a static schedule"
    );
    run_nowait(ctx, n, sched, &mut body);
}

fn run_nowait(ctx: &WorkerCtx, n: usize, sched: Schedule, body: &mut impl FnMut(usize)) {
    let (tid, nt) = (ctx.thread_id, ctx.num_threads);
    match sched {
        Schedule::Static => {
            for i in static_chunk(tid, nt, n) {
                body(i);
            }
        }
        Schedule::StaticChunk(chunk) => {
            let chunk = chunk.max(1);
            let mut start = tid * chunk;
            while start < n {
                let end = (start + chunk).min(n);
                for i in start..end {
                    body(i);
                }
                start += nt * chunk;
            }
        }
        Schedule::Dynamic(chunk) => {
            let chunk = chunk.max(1);
            dynamic_loop(ctx, n, move |_remaining| chunk, body);
        }
        Schedule::Guided => {
            let nt = nt.max(1);
            dynamic_loop(ctx, n, move |remaining| (remaining / (2 * nt)).max(1), body);
        }
    }
}

/// Shared-counter loop used by the dynamic and guided schedules. The chunk
/// size may depend on the number of iterations still unclaimed.
fn dynamic_loop(
    ctx: &WorkerCtx,
    n: usize,
    chunk_of: impl Fn(usize) -> usize,
    body: &mut impl FnMut(usize),
) {
    if ctx.num_threads == 1 {
        for i in 0..n {
            body(i);
        }
        return;
    }
    let next = ctx.loop_counter();
    // Entry protocol: reset the shared counter exactly once, with barriers
    // isolating the reset from both the previous loop and the claims below.
    ctx.barrier();
    if ctx.thread_id == 0 {
        next.store(0, Ordering::Relaxed);
    }
    ctx.barrier();
    loop {
        let claimed = next.load(Ordering::Relaxed);
        if claimed >= n {
            break;
        }
        let chunk = chunk_of(n - claimed).max(1);
        let start = next.fetch_add(chunk, Ordering::Relaxed);
        if start >= n {
            break;
        }
        let end = (start + chunk).min(n);
        for i in start..end {
            body(i);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_chunk_partitions_exactly() {
        for n in [0usize, 1, 7, 16, 100, 101] {
            for nt in [1usize, 2, 3, 8, 16] {
                let ranges = static_assignment(nt, n);
                let total: usize = ranges.iter().map(|r| r.len()).sum();
                assert_eq!(total, n, "n={n} nt={nt}");
                // Contiguous, in order, non-overlapping.
                let mut expect = 0;
                for r in &ranges {
                    assert_eq!(r.start, expect);
                    expect = r.end;
                }
                // Balanced to within one iteration.
                let lens: Vec<_> = ranges.iter().map(|r| r.len()).collect();
                let min = lens.iter().min().unwrap();
                let max = lens.iter().max().unwrap();
                assert!(max - min <= 1);
            }
        }
    }

    #[test]
    fn static_chunk_matches_paper_imbalance_example() {
        // 64 samples on 12 threads: 4 threads get 6, 8 threads get 5 — the
        // work-unbalance the paper's loop coalescing addresses.
        let lens: Vec<_> = static_assignment(12, 64).iter().map(|r| r.len()).collect();
        assert_eq!(lens.iter().filter(|&&l| l == 6).count(), 4);
        assert_eq!(lens.iter().filter(|&&l| l == 5).count(), 8);
    }

    #[test]
    fn static_chunked_count_sums_to_n() {
        for &(n, nt, c) in &[(100usize, 4usize, 7usize), (13, 5, 2), (5, 8, 3), (0, 3, 4)] {
            let total: usize = (0..nt).map(|t| static_chunked_count(t, nt, n, c)).sum();
            assert_eq!(total, n);
        }
    }

    #[test]
    fn zero_chunk_is_clamped() {
        assert_eq!(static_chunked_count(0, 2, 10, 0), 5);
    }

    #[test]
    fn projection_agrees_with_the_runtime_chunk_math() {
        // Static: one contiguous range per thread, same as static_assignment.
        let proj = static_projection(Schedule::Static, 3, 10);
        assert_eq!(
            proj,
            vec![vec![0..4], vec![4..7], vec![7..10]],
            "static projection must match static_assignment"
        );
        // StaticChunk: round-robin dealing, per-thread totals match
        // static_chunked_count.
        let proj = static_projection(Schedule::StaticChunk(3), 2, 10);
        assert_eq!(proj, vec![vec![0..3, 6..9], vec![3..6, 9..10]]);
        for (t, ranges) in proj.iter().enumerate() {
            let got: usize = ranges.iter().map(|r| r.len()).sum();
            assert_eq!(got, static_chunked_count(t, 2, 10, 3));
        }
        // Guided: chunks shrink as (remaining / 2nt).max(1); 20 iters on 2
        // threads → 5, 3, 3, 2, 1, 1, ... dealt round-robin.
        let proj = static_projection(Schedule::Guided, 2, 20);
        let mut chunks: Vec<_> = proj.iter().flatten().cloned().collect();
        chunks.sort_by_key(|r| r.start);
        assert_eq!(chunks[0], 0..5);
        assert_eq!(chunks[1], 5..8);
        let covered: usize = chunks.iter().map(|r| r.len()).sum();
        assert_eq!(covered, 20);
    }
}
