//! The `ordered` construct: serialize a code block in thread-id order.
//!
//! Algorithm 5 (lines 22-24) of the paper merges every thread's privatized
//! gradient blob into the shared gradient with an *ordered* loop, so the
//! floating-point accumulation order — and therefore the training loss
//! trajectory — is reproducible run-to-run for a fixed thread count.

use parking_lot::{Condvar, Mutex};

/// Monotonic turn counter backing [`crate::WorkerCtx::ordered`].
///
/// Each `run_ordered` call with thread id `t` on a team of `n` waits until
/// `counter % n == t`, runs the closure, then increments the counter. If
/// every thread calls it once per "round", rounds execute in thread order
/// and the construct is reusable for any number of rounds per region.
pub(crate) struct Turn {
    counter: Mutex<usize>,
    cv: Condvar,
}

impl Turn {
    pub(crate) fn new() -> Self {
        Self {
            counter: Mutex::new(0),
            cv: Condvar::new(),
        }
    }

    /// Reset at the start of a parallel region (called by the master before
    /// the start barrier, so no thread can be waiting).
    pub(crate) fn reset(&self) {
        *self.counter.lock() = 0;
    }

    pub(crate) fn run_ordered<R>(&self, tid: usize, nthreads: usize, f: impl FnOnce() -> R) -> R {
        if nthreads <= 1 {
            return f();
        }
        {
            let _span = obs::trace::span("ordered_wait", "omprt");
            let mut c = self.counter.lock();
            while *c % nthreads != tid {
                self.cv.wait(&mut c);
            }
        }
        let r = f();
        let mut c = self.counter.lock();
        *c += 1;
        self.cv.notify_all();
        r
    }
}

/// A standalone ordered region usable outside a [`crate::ThreadTeam`] —
/// e.g. from rayon tasks — keyed by an explicit sequence index.
///
/// `run(idx, f)` blocks until all indices `< idx` have completed, runs `f`,
/// then releases index `idx`. Indices must form a permutation of
/// `0..rounds`.
pub struct OrderedRegion {
    next: Mutex<usize>,
    cv: Condvar,
}

impl OrderedRegion {
    /// New region whose first admitted index is 0.
    pub fn new() -> Self {
        Self {
            next: Mutex::new(0),
            cv: Condvar::new(),
        }
    }

    /// Execute `f` when it is `idx`'s turn.
    pub fn run<R>(&self, idx: usize, f: impl FnOnce() -> R) -> R {
        let mut n = self.next.lock();
        while *n != idx {
            self.cv.wait(&mut n);
        }
        drop(n);
        let r = f();
        let mut n = self.next.lock();
        *n += 1;
        self.cv.notify_all();
        r
    }

    /// Reset so the region can be reused from index 0.
    pub fn reset(&self) {
        *self.next.lock() = 0;
    }
}

impl Default for OrderedRegion {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex as StdMutex;

    #[test]
    fn ordered_region_serializes_by_index() {
        let region = OrderedRegion::new();
        let log = StdMutex::new(Vec::new());
        std::thread::scope(|s| {
            // Deliberately start in reverse order.
            for idx in (0..4).rev() {
                let region = &region;
                let log = &log;
                s.spawn(move || {
                    region.run(idx, || log.lock().unwrap().push(idx));
                });
            }
        });
        assert_eq!(*log.lock().unwrap(), vec![0, 1, 2, 3]);
    }

    #[test]
    fn ordered_region_reset() {
        let region = OrderedRegion::new();
        region.run(0, || ());
        region.run(1, || ());
        region.reset();
        let mut ran = false;
        region.run(0, || ran = true);
        assert!(ran);
    }

    #[test]
    fn turn_single_thread_is_passthrough() {
        let t = Turn::new();
        assert_eq!(t.run_ordered(0, 1, || 42), 42);
    }
}
