//! Loop coalescing: collapse a perfect loop nest into one canonical
//! induction variable (CIV) and decode it back — the manual transformation
//! of Algorithms 4-5 (`s = f_s(civ); d1 = f_1(civ); ...`).
//!
//! Coalescing shrinks the minimal work unit under static scheduling: a
//! batch loop of 64 iterations on 12 threads is unbalanced by a whole
//! sample, while the coalesced `(s, c_out)` loop of 64*20 iterations is
//! unbalanced by at most one segment.

/// A coalesced loop nest: extents of the collapsed dimensions, outermost
/// first.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Coalesce {
    dims: Vec<usize>,
    total: usize,
}

impl Coalesce {
    /// Coalesce the loops with the given extents (outermost first).
    pub fn new(dims: &[usize]) -> Self {
        let total = dims.iter().product();
        Self {
            dims: dims.to_vec(),
            total,
        }
    }

    /// Total iteration count of the collapsed loop.
    pub fn total(&self) -> usize {
        self.total
    }

    /// Number of collapsed dimensions.
    pub fn ndim(&self) -> usize {
        self.dims.len()
    }

    /// Extents of the collapsed dimensions.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Decode a CIV into per-dimension indices (outermost first) —
    /// the `f_s`, `f_1`, ... functions of Algorithm 4.
    ///
    /// # Panics
    /// Panics (debug) if `civ >= total()`.
    pub fn decode(&self, civ: usize) -> Vec<usize> {
        debug_assert!(civ < self.total.max(1));
        let mut idx = vec![0usize; self.dims.len()];
        let mut rem = civ;
        for (k, &d) in self.dims.iter().enumerate().rev() {
            idx[k] = rem % d;
            rem /= d;
        }
        idx
    }

    /// Allocation-free two-dimensional decode: `civ -> (outer, inner)`.
    /// Valid only when `ndim() == 2`.
    #[inline]
    pub fn decode2(&self, civ: usize) -> (usize, usize) {
        debug_assert_eq!(self.dims.len(), 2);
        let inner = self.dims[1];
        (civ / inner, civ % inner)
    }

    /// Allocation-free three-dimensional decode.
    #[inline]
    pub fn decode3(&self, civ: usize) -> (usize, usize, usize) {
        debug_assert_eq!(self.dims.len(), 3);
        let d2 = self.dims[2];
        let d1 = self.dims[1];
        (civ / (d1 * d2), (civ / d2) % d1, civ % d2)
    }

    /// Encode per-dimension indices back into a CIV (inverse of `decode`).
    pub fn encode(&self, idx: &[usize]) -> usize {
        debug_assert_eq!(idx.len(), self.dims.len());
        let mut civ = 0usize;
        for (&i, &d) in idx.iter().zip(&self.dims) {
            debug_assert!(i < d);
            civ = civ * d + i;
        }
        civ
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decode_encode_round_trip() {
        let c = Coalesce::new(&[3, 4, 5]);
        assert_eq!(c.total(), 60);
        for civ in 0..60 {
            let idx = c.decode(civ);
            assert_eq!(c.encode(&idx), civ);
            let (a, b, d) = c.decode3(civ);
            assert_eq!(idx, vec![a, b, d]);
        }
    }

    #[test]
    fn decode_is_row_major_order() {
        let c = Coalesce::new(&[2, 3]);
        assert_eq!(c.decode(0), vec![0, 0]);
        assert_eq!(c.decode(1), vec![0, 1]);
        assert_eq!(c.decode(3), vec![1, 0]);
        assert_eq!(c.decode2(5), (1, 2));
    }

    #[test]
    fn single_dim_is_identity() {
        let c = Coalesce::new(&[7]);
        for i in 0..7 {
            assert_eq!(c.decode(i), vec![i]);
        }
    }

    #[test]
    fn empty_dims_is_single_iteration() {
        let c = Coalesce::new(&[]);
        assert_eq!(c.total(), 1);
        assert_eq!(c.decode(0), Vec::<usize>::new());
    }

    #[test]
    fn coalescing_reduces_static_imbalance() {
        // The motivating example: batch of 64 on 12 threads.
        use crate::schedule::static_assignment;
        let plain = static_assignment(12, 64);
        let coal = static_assignment(12, Coalesce::new(&[64, 20]).total());
        let imb = |rs: &Vec<std::ops::Range<usize>>, per_iter: usize| {
            let lens: Vec<_> = rs.iter().map(|r| r.len() * per_iter).collect();
            lens.iter().max().unwrap() - lens.iter().min().unwrap()
        };
        // Plain: one iteration = one full sample = 20 work units.
        // Coalesced: one iteration = 1 work unit.
        assert_eq!(imb(&plain, 20), 20);
        assert_eq!(imb(&coal, 1), 1);
    }
}
