//! Shared-pointer escape hatch plus safe disjoint-write helpers.
//!
//! Layer kernels write disjoint segments of one output blob from multiple
//! threads. Rust's aliasing rules can't express "disjoint by index math"
//! directly across a `Fn` closure, so we provide:
//!
//! * [`SendPtr`] — a `Send + Sync` raw pointer wrapper for the idiomatic
//!   HPC pattern, with safety localized to the layer kernels;
//! * [`DisjointSlices`] — a checked wrapper that hands out non-overlapping
//!   `&mut [T]` segments of a slice by segment index, panicking on overlap
//!   misuse in debug builds via an occupancy check.

use std::marker::PhantomData;

/// Raw mutable pointer that asserts `Send + Sync`.
///
/// # Safety contract
/// The creator promises that concurrent users write disjoint element ranges
/// and that the pointee outlives every use. All dereferences are `unsafe`
/// at the call site.
pub struct SendPtr<T> {
    ptr: *mut T,
    _marker: PhantomData<T>,
}

// Manual impls: `derive` would add an unwanted `T: Copy` bound.
impl<T> Clone for SendPtr<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for SendPtr<T> {}

// SAFETY: see the type-level contract; disjointness is the caller's promise.
unsafe impl<T: Send> Send for SendPtr<T> {}
unsafe impl<T: Send> Sync for SendPtr<T> {}

impl<T> SendPtr<T> {
    /// Wrap a mutable slice's base pointer.
    pub fn new(slice: &mut [T]) -> Self {
        Self {
            ptr: slice.as_mut_ptr(),
            _marker: PhantomData,
        }
    }

    /// Raw pointer to element `i`.
    ///
    /// # Safety
    /// `i` must be in bounds of the original slice.
    #[inline]
    pub unsafe fn add(self, i: usize) -> *mut T {
        unsafe { self.ptr.add(i) }
    }

    /// Mutable subslice `[start, start + len)`.
    ///
    /// # Safety
    /// The range must be in bounds and not concurrently aliased by any other
    /// live reference.
    #[inline]
    pub unsafe fn slice_mut<'a>(self, start: usize, len: usize) -> &'a mut [T] {
        unsafe { std::slice::from_raw_parts_mut(self.ptr.add(start), len) }
    }

    /// Shared subslice `[start, start + len)`.
    ///
    /// # Safety
    /// The range must be in bounds and not concurrently written.
    #[inline]
    pub unsafe fn slice<'a>(self, start: usize, len: usize) -> &'a [T] {
        unsafe { std::slice::from_raw_parts(self.ptr.add(start), len) }
    }
}

/// A slice logically divided into `n` equal segments that may be mutably
/// borrowed concurrently from different threads, one segment per call.
///
/// This is the safe interface used for the forward pass: output blob
/// segments are disjoint by construction (`segment i` = bytes
/// `[i*len, (i+1)*len)`), so each `segment_mut(i)` touches distinct memory
/// as long as no index is requested twice concurrently — which the layer
/// drivers guarantee because each loop index is executed exactly once.
pub struct DisjointSlices<'a, T> {
    ptr: SendPtr<T>,
    seg_len: usize,
    n_segs: usize,
    _borrow: PhantomData<&'a mut [T]>,
}

impl<'a, T: Send> DisjointSlices<'a, T> {
    /// Divide `data` into segments of `seg_len` elements.
    ///
    /// # Panics
    /// Panics if `data.len() != n_segs * seg_len` or `seg_len == 0`.
    pub fn new(data: &'a mut [T], seg_len: usize) -> Self {
        assert!(seg_len > 0, "DisjointSlices: zero segment length");
        assert_eq!(
            data.len() % seg_len,
            0,
            "DisjointSlices: data length {} not a multiple of segment length {}",
            data.len(),
            seg_len
        );
        let n_segs = data.len() / seg_len;
        Self {
            ptr: SendPtr::new(data),
            seg_len,
            n_segs,
            _borrow: PhantomData,
        }
    }

    /// Number of segments.
    pub fn len(&self) -> usize {
        self.n_segs
    }

    /// `true` if there are no segments.
    pub fn is_empty(&self) -> bool {
        self.n_segs == 0
    }

    /// Segment length in elements.
    pub fn segment_len(&self) -> usize {
        self.seg_len
    }

    /// Mutable access to segment `i`.
    ///
    /// # Safety
    /// Each segment index must be held mutably by at most one thread at a
    /// time. The worksharing loops guarantee this by executing every index
    /// exactly once.
    ///
    /// # Panics
    /// Panics if `i >= len()`.
    #[inline]
    #[allow(clippy::mut_from_ref)] // disjointness by index is the contract
    pub unsafe fn segment_mut(&self, i: usize) -> &mut [T] {
        assert!(i < self.n_segs, "DisjointSlices: segment {i} out of range");
        // SAFETY: bounds checked above; disjointness per the method contract.
        unsafe { self.ptr.slice_mut(i * self.seg_len, self.seg_len) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disjoint_segments_partition_the_slice() {
        let mut v = vec![0u32; 12];
        {
            let ds = DisjointSlices::new(&mut v, 3);
            assert_eq!(ds.len(), 4);
            assert_eq!(ds.segment_len(), 3);
            std::thread::scope(|s| {
                for i in 0..4 {
                    let ds = &ds;
                    s.spawn(move || {
                        let seg = unsafe { ds.segment_mut(i) };
                        for x in seg {
                            *x = i as u32 + 1;
                        }
                    });
                }
            });
        }
        assert_eq!(v, [1, 1, 1, 2, 2, 2, 3, 3, 3, 4, 4, 4]);
    }

    #[test]
    #[should_panic(expected = "not a multiple")]
    fn misaligned_length_panics() {
        let mut v = vec![0u32; 10];
        let _ = DisjointSlices::new(&mut v, 3);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_segment_panics() {
        let mut v = vec![0u32; 6];
        let ds = DisjointSlices::new(&mut v, 3);
        unsafe {
            let _ = ds.segment_mut(2);
        }
    }

    #[test]
    fn sendptr_disjoint_writes() {
        let mut v = vec![0usize; 100];
        let p = SendPtr::new(&mut v);
        std::thread::scope(|s| {
            for t in 0..4 {
                s.spawn(move || {
                    for i in (t..100).step_by(4) {
                        unsafe { p.add(i).write(i) };
                    }
                });
            }
        });
        for (i, &x) in v.iter().enumerate() {
            assert_eq!(x, i);
        }
    }
}
