//! Property-based tests for the mini-OpenMP runtime: every schedule must
//! execute every index exactly once for arbitrary loop sizes and team
//! sizes, coalescing must be a bijection, and the static chunk math must
//! partition exactly.

use omprt::coalesce::Coalesce;
use omprt::schedule::{static_assignment, static_chunked_count, static_projection, Schedule};
use omprt::ThreadTeam;
use proptest::prelude::*;
use std::sync::atomic::{AtomicUsize, Ordering};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn static_assignment_partitions(n in 0usize..500, t in 1usize..17) {
        let ranges = static_assignment(t, n);
        prop_assert_eq!(ranges.len(), t);
        let total: usize = ranges.iter().map(|r| r.len()).sum();
        prop_assert_eq!(total, n);
        let mut next = 0usize;
        for r in &ranges {
            prop_assert_eq!(r.start, next);
            next = r.end;
        }
        prop_assert_eq!(next, n);
        // Balance within one iteration.
        let lens: Vec<usize> = ranges.iter().map(|r| r.len()).collect();
        prop_assert!(lens.iter().max().unwrap() - lens.iter().min().unwrap() <= 1);
    }

    #[test]
    fn static_chunked_counts_partition(n in 0usize..300, t in 1usize..9, c in 1usize..20) {
        let total: usize = (0..t).map(|tid| static_chunked_count(tid, t, n, c)).sum();
        prop_assert_eq!(total, n);
    }

    #[test]
    fn coalesce_round_trip(dims in proptest::collection::vec(1usize..6, 1..5)) {
        let co = Coalesce::new(&dims);
        for civ in 0..co.total() {
            let idx = co.decode(civ);
            prop_assert_eq!(idx.len(), dims.len());
            for (i, d) in idx.iter().zip(&dims) {
                prop_assert!(i < d);
            }
            prop_assert_eq!(co.encode(&idx), civ);
        }
    }

    #[test]
    fn coalesce_decode_is_lexicographic(dims in proptest::collection::vec(1usize..5, 2..4)) {
        let co = Coalesce::new(&dims);
        let mut prev: Option<Vec<usize>> = None;
        for civ in 0..co.total() {
            let idx = co.decode(civ);
            if let Some(p) = prev {
                prop_assert!(p < idx, "decode not lexicographically increasing");
            }
            prev = Some(idx);
        }
    }

    #[test]
    fn every_projection_partitions_exactly(n in 0usize..300,
                                           threads in 1usize..17,
                                           chunk in 1usize..20) {
        for sched in [
            Schedule::Static,
            Schedule::StaticChunk(chunk),
            Schedule::Dynamic(chunk),
            Schedule::Guided,
        ] {
            let proj = static_projection(sched, threads, n);
            prop_assert_eq!(proj.len(), threads, "one slot per thread under {:?}", sched);
            // Every index in 0..n appears in exactly one range of exactly
            // one thread: the per-thread ranges are an exact partition.
            let mut hits = vec![0usize; n];
            for ranges in &proj {
                for r in ranges {
                    prop_assert!(!r.is_empty(), "empty range emitted under {:?}", sched);
                    prop_assert!(r.end <= n, "range {:?} overruns n={} under {:?}", r, n, sched);
                    for i in r.clone() {
                        hits[i] += 1;
                    }
                }
            }
            for (i, h) in hits.iter().enumerate() {
                prop_assert_eq!(*h, 1, "index {} covered {} times under {:?}", i, h, sched);
            }
        }
    }

    #[test]
    fn projection_matches_static_runtime_assignment(n in 0usize..300,
                                                    threads in 1usize..17,
                                                    chunk in 1usize..20) {
        // For the static schedules the projection is not merely a model —
        // it must equal the runtime's per-thread assignment exactly.
        let proj = static_projection(Schedule::Static, threads, n);
        for (t, ranges) in proj.iter().enumerate() {
            let want = static_assignment(threads, n)[t].clone();
            if want.is_empty() {
                prop_assert!(ranges.is_empty());
            } else {
                prop_assert_eq!(ranges.as_slice(), &[want]);
            }
        }
        let proj = static_projection(Schedule::StaticChunk(chunk), threads, n);
        for (t, ranges) in proj.iter().enumerate() {
            let got: usize = ranges.iter().map(|r| r.len()).sum();
            prop_assert_eq!(got, static_chunked_count(t, threads, n, chunk));
            // run_nowait strides thread t through starts t*c, (t+nt)*c, ...
            for (j, r) in ranges.iter().enumerate() {
                prop_assert_eq!(r.start, (t + j * threads) * chunk);
            }
        }
    }

    #[test]
    fn every_schedule_covers_every_index(n in 0usize..200,
                                         threads in 1usize..5,
                                         which in 0usize..4,
                                         chunk in 1usize..8) {
        let sched = match which {
            0 => Schedule::Static,
            1 => Schedule::StaticChunk(chunk),
            2 => Schedule::Dynamic(chunk),
            _ => Schedule::Guided,
        };
        let team = ThreadTeam::new(threads);
        let hits: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        team.parallel_for(n, sched, |_, i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        for (i, h) in hits.iter().enumerate() {
            prop_assert_eq!(h.load(Ordering::Relaxed), 1, "index {} under {:?}", i, sched);
        }
    }

    #[test]
    fn ordered_construct_always_runs_in_thread_order(threads in 1usize..6, rounds in 1usize..4) {
        let team = ThreadTeam::new(threads);
        let log = std::sync::Mutex::new(Vec::new());
        team.parallel(|ctx| {
            for _ in 0..rounds {
                ctx.ordered(|| log.lock().unwrap().push(ctx.thread_id));
            }
        });
        let log = log.into_inner().unwrap();
        prop_assert_eq!(log.len(), threads * rounds);
        for (i, &tid) in log.iter().enumerate() {
            prop_assert_eq!(tid, i % threads);
        }
    }
}
