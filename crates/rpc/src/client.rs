//! `RpcClient` — a blocking wire client with pipelined request support.
//!
//! The CGRP protocol matches responses to requests by frame `id`, and
//! the event-driven server answers in micro-batch completion order —
//! not send order. The client therefore keeps a table of outstanding
//! ids: [`RpcClient::send_infer`] / [`RpcClient::send_infer_stream`]
//! put requests on the wire without waiting, and
//! [`RpcClient::recv_completion`] blocks for the next response from
//! *any* of them. The classic closed-loop calls ([`RpcClient::infer`])
//! are a send immediately followed by a wait for that id, stashing any
//! other completions that arrive first.
//!
//! A response whose `id` matches nothing outstanding still poisons the
//! stream ([`RpcError::Protocol`]) — with the bookkeeping in place that
//! can only mean desynchronisation, never pipelining.

use crate::proto::{self};
use crate::RpcError;
use std::collections::{HashMap, VecDeque};
use std::io::{self, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// How the server answered one sample.
#[derive(Debug, Clone, PartialEq)]
pub enum Outcome {
    /// Softmax outputs, length-checked against the handshake.
    Probs(Vec<f32>),
    /// Admission queue full — back off and retry.
    Rejected,
    /// The deadline budget expired before compute.
    TimedOut,
    /// Server-side error message for this request.
    Error(String),
}

/// One response frame, matched to its request.
#[derive(Debug, Clone, PartialEq)]
pub struct Completion {
    /// The request id this answers.
    pub id: u64,
    /// Sample index for streaming requests; 0 for unary.
    pub index: u32,
    pub outcome: Outcome,
}

/// A connected wire client. See [`RpcClient::connect`].
pub struct RpcClient {
    stream: TcpStream,
    sample_len: usize,
    output_len: usize,
    next_id: u64,
    buf: Vec<u8>,
    /// id → responses still owed (1 for unary, K for a stream frame).
    outstanding: HashMap<u64, usize>,
    /// Completions read off the wire while waiting for a specific id.
    ready: VecDeque<Completion>,
}

/// Map a failed read: a clean hangup means the server finished draining.
fn read_err(e: io::Error) -> RpcError {
    if e.kind() == io::ErrorKind::UnexpectedEof {
        RpcError::ServerShutdown
    } else {
        RpcError::Io(e.to_string())
    }
}

impl RpcClient {
    /// Connect with a 5 s I/O timeout.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self, RpcError> {
        Self::connect_with(addr, Duration::from_secs(5))
    }

    /// Connect, perform the handshake, and learn the server's sample and
    /// output shapes. `io_timeout` bounds every subsequent read and write.
    pub fn connect_with(addr: impl ToSocketAddrs, io_timeout: Duration) -> Result<Self, RpcError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(io_timeout))?;
        stream.set_write_timeout(Some(io_timeout))?;
        let mut client = Self {
            stream,
            sample_len: 0,
            output_len: 0,
            next_id: 1,
            buf: Vec::new(),
            outstanding: HashMap::new(),
            ready: VecDeque::new(),
        };
        let mut hello = [0u8; proto::SERVER_HELLO_LEN];
        client.stream.read_exact(&mut hello).map_err(read_err)?;
        let h = proto::decode_server_hello(&hello)?;
        match h.status {
            proto::HELLO_OK => {}
            proto::HELLO_BUSY => return Err(RpcError::Busy),
            proto::HELLO_DRAINING => return Err(RpcError::ServerShutdown),
            s => return Err(RpcError::Protocol(format!("unknown hello status {s}"))),
        }
        client.stream.write_all(&proto::encode_client_hello())?;
        client.sample_len = h.sample_len as usize;
        client.output_len = h.output_len as usize;
        Ok(client)
    }

    /// Values per sample, from the handshake.
    pub fn sample_len(&self) -> usize {
        self.sample_len
    }

    /// Values per output, from the handshake.
    pub fn output_len(&self) -> usize {
        self.output_len
    }

    /// Responses the server still owes this connection.
    pub fn in_flight(&self) -> usize {
        self.outstanding.values().sum::<usize>() + self.ready.len()
    }

    /// Put one sample on the wire without waiting; returns the request
    /// id to match against [`RpcClient::recv_completion`]. `budget_us`
    /// of 0 means no deadline.
    pub fn send_infer(&mut self, sample: &[f32], budget_us: u32) -> Result<u64, RpcError> {
        if sample.len() != self.sample_len {
            return Err(RpcError::ShapeMismatch {
                got: sample.len(),
                want: self.sample_len,
            });
        }
        let id = self.next_id;
        self.next_id += 1;
        self.buf.clear();
        proto::write_f32s(&mut self.buf, sample);
        let head = proto::encode_header(proto::REQ_INFER, id, budget_us, self.buf.len() as u32);
        self.stream.write_all(&head)?;
        self.stream.write_all(&self.buf)?;
        self.outstanding.insert(id, 1);
        Ok(id)
    }

    /// Put K samples on the wire as one [`proto::REQ_INFER_STREAM`]
    /// frame; the server owes K responses sharing the returned id, each
    /// carrying its sample index in [`Completion::index`]. Returns
    /// `(id, K)`.
    pub fn send_infer_stream(
        &mut self,
        flat: &[f32],
        budget_us: u32,
    ) -> Result<(u64, usize), RpcError> {
        if flat.is_empty() || !flat.len().is_multiple_of(self.sample_len) {
            return Err(RpcError::ShapeMismatch {
                got: flat.len(),
                want: self.sample_len,
            });
        }
        let bytes = std::mem::size_of_val(flat);
        if bytes > proto::MAX_PAYLOAD as usize {
            return Err(RpcError::Protocol(format!(
                "stream payload of {bytes} bytes exceeds the {} cap",
                proto::MAX_PAYLOAD
            )));
        }
        let k = flat.len() / self.sample_len;
        let id = self.next_id;
        self.next_id += 1;
        self.buf.clear();
        proto::write_f32s(&mut self.buf, flat);
        let head = proto::encode_header(
            proto::REQ_INFER_STREAM,
            id,
            budget_us,
            self.buf.len() as u32,
        );
        self.stream.write_all(&head)?;
        self.stream.write_all(&self.buf)?;
        self.outstanding.insert(id, k);
        Ok((id, k))
    }

    /// Block for the next completion from any outstanding request —
    /// stashed or off the wire, in server completion order.
    pub fn recv_completion(&mut self) -> Result<Completion, RpcError> {
        if let Some(c) = self.ready.pop_front() {
            return Ok(c);
        }
        self.recv_wire()
    }

    /// Submit one sample and block for its softmax outputs.
    pub fn infer(&mut self, sample: &[f32]) -> Result<Vec<f32>, RpcError> {
        let id = self.send_infer(sample, 0)?;
        into_result(self.wait_for(id)?)
    }

    /// Like [`RpcClient::infer`], but the server drops the request with
    /// [`RpcError::TimedOut`] if it is still queued after `budget_us`
    /// microseconds (measured server-side from decode).
    pub fn infer_with_budget(
        &mut self,
        sample: &[f32],
        budget_us: u32,
    ) -> Result<Vec<f32>, RpcError> {
        let id = self.send_infer(sample, budget_us.max(1))?;
        into_result(self.wait_for(id)?)
    }

    /// Submit K samples as one frame and block for all K outputs, in
    /// sample order. Any per-sample failure fails the call.
    pub fn infer_stream(&mut self, flat: &[f32]) -> Result<Vec<Vec<f32>>, RpcError> {
        let (id, k) = self.send_infer_stream(flat, 0)?;
        let mut out: Vec<Option<Vec<f32>>> = vec![None; k];
        for _ in 0..k {
            let c = self.wait_for(id)?;
            let idx = c.index as usize;
            if idx >= k || out[idx].is_some() {
                return Err(RpcError::Protocol(format!(
                    "stream response index {idx} out of range or duplicated"
                )));
            }
            out[idx] = Some(into_result(c)?);
        }
        Ok(out.into_iter().map(|o| o.expect("all k filled")).collect())
    }

    /// Ask the server to drain and shut down; returns once acknowledged.
    /// Completions for still-outstanding requests may arrive first; they
    /// are stashed for [`RpcClient::recv_completion`].
    pub fn drain_server(&mut self) -> Result<(), RpcError> {
        let id = self.next_id;
        self.next_id += 1;
        self.stream
            .write_all(&proto::encode_header(proto::REQ_DRAIN, id, 0, 0))?;
        loop {
            let (kind, rid, aux, payload) = self.read_response()?;
            if kind == proto::RESP_SHUTDOWN {
                if rid == id {
                    return Ok(());
                }
                return Err(RpcError::ServerShutdown);
            }
            let c = self.match_completion(kind, rid, aux, payload)?;
            self.ready.push_back(c);
        }
    }

    /// Wait for a completion of `id` specifically, stashing others.
    fn wait_for(&mut self, id: u64) -> Result<Completion, RpcError> {
        if let Some(pos) = self.ready.iter().position(|c| c.id == id) {
            return Ok(self.ready.remove(pos).expect("position just found"));
        }
        loop {
            let c = self.recv_wire()?;
            if c.id == id {
                return Ok(c);
            }
            self.ready.push_back(c);
        }
    }

    /// Read one response frame and match it to an outstanding request.
    fn recv_wire(&mut self) -> Result<Completion, RpcError> {
        if self.outstanding.is_empty() {
            return Err(RpcError::Protocol(
                "no requests in flight to receive for".into(),
            ));
        }
        let (kind, rid, aux, payload) = self.read_response()?;
        if kind == proto::RESP_SHUTDOWN {
            return Err(RpcError::ServerShutdown);
        }
        self.match_completion(kind, rid, aux, payload)
    }

    /// Decode a non-shutdown response against the outstanding table.
    fn match_completion(
        &mut self,
        kind: u8,
        rid: u64,
        aux: u32,
        payload: Vec<u8>,
    ) -> Result<Completion, RpcError> {
        let Some(left) = self.outstanding.get_mut(&rid) else {
            return Err(RpcError::Protocol(format!(
                "response carries id {rid}, which has no outstanding request"
            )));
        };
        *left -= 1;
        if *left == 0 {
            self.outstanding.remove(&rid);
        }
        let outcome = match kind {
            proto::RESP_PROBS => {
                let out = proto::read_f32s(&payload)?;
                if out.len() != self.output_len {
                    return Err(RpcError::Protocol(format!(
                        "{} output values, handshake promised {}",
                        out.len(),
                        self.output_len
                    )));
                }
                Outcome::Probs(out)
            }
            proto::RESP_REJECTED => Outcome::Rejected,
            proto::RESP_TIMED_OUT => Outcome::TimedOut,
            proto::RESP_ERROR => Outcome::Error(String::from_utf8_lossy(&payload).into_owned()),
            k => return Err(RpcError::Protocol(format!("unknown response kind {k}"))),
        };
        Ok(Completion {
            id: rid,
            index: aux,
            outcome,
        })
    }

    fn read_response(&mut self) -> Result<(u8, u64, u32, Vec<u8>), RpcError> {
        let mut head = [0u8; proto::FRAME_HEADER_LEN];
        self.stream.read_exact(&mut head).map_err(read_err)?;
        let h = proto::decode_header(&head)?;
        if h.payload_len > proto::MAX_PAYLOAD {
            return Err(RpcError::Protocol(format!(
                "response payload of {} bytes exceeds the cap",
                h.payload_len
            )));
        }
        let mut payload = vec![0u8; h.payload_len as usize];
        self.stream.read_exact(&mut payload).map_err(read_err)?;
        Ok((h.kind, h.id, h.aux, payload))
    }
}

/// Fetch a live [`obs::Snapshot`] of a serving process's metrics registry
/// from `addr` — the client half of the `FRAME_STATS` exchange, used by
/// `cgdnn stats --connect`. Works against both the RPC event loop and a
/// dist coordinator: each greets with a server hello and answers a stats
/// frame read-only, without disturbing in-flight work. The connection is
/// dedicated to the scrape and dropped when it returns.
pub fn fetch_stats(
    addr: impl ToSocketAddrs,
    io_timeout: Duration,
) -> Result<obs::Snapshot, RpcError> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true)?;
    stream.set_read_timeout(Some(io_timeout))?;
    stream.set_write_timeout(Some(io_timeout))?;
    let mut hello = [0u8; proto::SERVER_HELLO_LEN];
    stream.read_exact(&mut hello).map_err(read_err)?;
    let h = proto::decode_server_hello(&hello)?;
    match h.status {
        proto::HELLO_OK => {}
        proto::HELLO_BUSY => return Err(RpcError::Busy),
        proto::HELLO_DRAINING => return Err(RpcError::ServerShutdown),
        s => return Err(RpcError::Protocol(format!("unknown hello status {s}"))),
    }
    stream.write_all(&proto::encode_client_hello())?;
    stream.write_all(&proto::encode_header(proto::FRAME_STATS, 1, 0, 0))?;
    // The snapshot arrives as FRAME_STATS chunks (tensor-style aux).
    let mut chunks: Vec<Option<Vec<u8>>> = Vec::new();
    let mut got = 0usize;
    while chunks.is_empty() || got < chunks.len() {
        let mut head = [0u8; proto::FRAME_HEADER_LEN];
        stream.read_exact(&mut head).map_err(read_err)?;
        let fh = proto::decode_header(&head)?;
        if fh.kind != proto::FRAME_STATS {
            return Err(RpcError::Protocol(format!(
                "expected a stats frame, got kind {}",
                fh.kind
            )));
        }
        if fh.payload_len > proto::MAX_PAYLOAD {
            return Err(RpcError::Protocol(format!(
                "stats payload of {} bytes exceeds the cap",
                fh.payload_len
            )));
        }
        let mut payload = vec![0u8; fh.payload_len as usize];
        stream.read_exact(&mut payload).map_err(read_err)?;
        let (idx, n) = proto::decode_chunk_aux(fh.aux);
        if chunks.is_empty() {
            if n == 0 {
                return Err(RpcError::Protocol("stats frame announces 0 chunks".into()));
            }
            chunks = vec![None; n];
        }
        if n != chunks.len() || idx >= n || chunks[idx].is_some() {
            return Err(RpcError::Protocol(format!(
                "stats chunk {idx}/{n} is out of range or duplicated"
            )));
        }
        chunks[idx] = Some(payload);
        got += 1;
    }
    let mut bytes = Vec::new();
    for c in chunks {
        bytes.extend_from_slice(&c.expect("all chunks received"));
    }
    obs::Snapshot::from_bytes(&bytes).map_err(RpcError::Protocol)
}

/// Collapse a completion into the classic closed-loop result shape.
fn into_result(c: Completion) -> Result<Vec<f32>, RpcError> {
    match c.outcome {
        Outcome::Probs(p) => Ok(p),
        Outcome::Rejected => Err(RpcError::Rejected),
        Outcome::TimedOut => Err(RpcError::TimedOut),
        Outcome::Error(msg) => Err(RpcError::Server(msg)),
    }
}
