//! `RpcClient` — a blocking, single-connection wire client.
//!
//! One request is in flight at a time (the closed-loop shape the load
//! generator wants); the response id is checked against the request id, so
//! a desynchronised stream surfaces as [`RpcError::Protocol`] instead of
//! silently mismatched answers.

use crate::proto::{self};
use crate::RpcError;
use std::io::{self, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// A connected wire client. See [`RpcClient::connect`].
pub struct RpcClient {
    stream: TcpStream,
    sample_len: usize,
    output_len: usize,
    next_id: u64,
    buf: Vec<u8>,
}

/// Map a failed read: a clean hangup means the server finished draining.
fn read_err(e: io::Error) -> RpcError {
    if e.kind() == io::ErrorKind::UnexpectedEof {
        RpcError::ServerShutdown
    } else {
        RpcError::Io(e.to_string())
    }
}

impl RpcClient {
    /// Connect with a 5 s I/O timeout.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self, RpcError> {
        Self::connect_with(addr, Duration::from_secs(5))
    }

    /// Connect, perform the handshake, and learn the server's sample and
    /// output shapes. `io_timeout` bounds every subsequent read and write.
    pub fn connect_with(addr: impl ToSocketAddrs, io_timeout: Duration) -> Result<Self, RpcError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(io_timeout))?;
        stream.set_write_timeout(Some(io_timeout))?;
        let mut client = Self {
            stream,
            sample_len: 0,
            output_len: 0,
            next_id: 1,
            buf: Vec::new(),
        };
        let mut hello = [0u8; proto::SERVER_HELLO_LEN];
        client.stream.read_exact(&mut hello).map_err(read_err)?;
        let h = proto::decode_server_hello(&hello)?;
        match h.status {
            proto::HELLO_OK => {}
            proto::HELLO_BUSY => return Err(RpcError::Busy),
            proto::HELLO_DRAINING => return Err(RpcError::ServerShutdown),
            s => return Err(RpcError::Protocol(format!("unknown hello status {s}"))),
        }
        client.stream.write_all(&proto::encode_client_hello())?;
        client.sample_len = h.sample_len as usize;
        client.output_len = h.output_len as usize;
        Ok(client)
    }

    /// Values per sample, from the handshake.
    pub fn sample_len(&self) -> usize {
        self.sample_len
    }

    /// Values per output, from the handshake.
    pub fn output_len(&self) -> usize {
        self.output_len
    }

    /// Submit one sample and block for its softmax outputs.
    pub fn infer(&mut self, sample: &[f32]) -> Result<Vec<f32>, RpcError> {
        self.request(sample, 0)
    }

    /// Like [`RpcClient::infer`], but the server drops the request with
    /// [`RpcError::TimedOut`] if it is still queued after `budget_us`
    /// microseconds (measured server-side from decode).
    pub fn infer_with_budget(
        &mut self,
        sample: &[f32],
        budget_us: u32,
    ) -> Result<Vec<f32>, RpcError> {
        self.request(sample, budget_us.max(1))
    }

    /// Ask the server to drain and shut down; returns once acknowledged.
    pub fn drain_server(&mut self) -> Result<(), RpcError> {
        let id = self.next_id;
        self.next_id += 1;
        self.stream
            .write_all(&proto::encode_header(proto::REQ_DRAIN, id, 0, 0))?;
        let (kind, rid, _) = self.read_response()?;
        if kind != proto::RESP_SHUTDOWN || rid != id {
            return Err(RpcError::Protocol(format!(
                "drain answered with kind {kind}, id {rid}"
            )));
        }
        Ok(())
    }

    fn request(&mut self, sample: &[f32], budget_us: u32) -> Result<Vec<f32>, RpcError> {
        if sample.len() != self.sample_len {
            return Err(RpcError::ShapeMismatch {
                got: sample.len(),
                want: self.sample_len,
            });
        }
        let id = self.next_id;
        self.next_id += 1;
        self.buf.clear();
        proto::write_f32s(&mut self.buf, sample);
        let head = proto::encode_header(proto::REQ_INFER, id, budget_us, self.buf.len() as u32);
        self.stream.write_all(&head)?;
        self.stream.write_all(&self.buf)?;
        let (kind, rid, payload) = self.read_response()?;
        if rid != id {
            return Err(RpcError::Protocol(format!(
                "response carries id {rid}, expected {id}"
            )));
        }
        match kind {
            proto::RESP_PROBS => {
                let out = proto::read_f32s(&payload)?;
                if out.len() != self.output_len {
                    return Err(RpcError::Protocol(format!(
                        "{} output values, handshake promised {}",
                        out.len(),
                        self.output_len
                    )));
                }
                Ok(out)
            }
            proto::RESP_REJECTED => Err(RpcError::Rejected),
            proto::RESP_TIMED_OUT => Err(RpcError::TimedOut),
            proto::RESP_SHUTDOWN => Err(RpcError::ServerShutdown),
            proto::RESP_ERROR => Err(RpcError::Server(
                String::from_utf8_lossy(&payload).into_owned(),
            )),
            k => Err(RpcError::Protocol(format!("unknown response kind {k}"))),
        }
    }

    fn read_response(&mut self) -> Result<(u8, u64, Vec<u8>), RpcError> {
        let mut head = [0u8; proto::FRAME_HEADER_LEN];
        self.stream.read_exact(&mut head).map_err(read_err)?;
        let h = proto::decode_header(&head)?;
        if h.payload_len > proto::MAX_PAYLOAD {
            return Err(RpcError::Protocol(format!(
                "response payload of {} bytes exceeds the cap",
                h.payload_len
            )));
        }
        let mut payload = vec![0u8; h.payload_len as usize];
        self.stream.read_exact(&mut payload).map_err(read_err)?;
        Ok((h.kind, h.id, payload))
    }
}
