//! `rpc` — the network serving front-end: a TCP wire path onto the
//! `serve` micro-batching engine, built on `std::net` alone (no new
//! dependencies — the build environment has no registry access).
//!
//! Training parallelizes within a batch (the paper's coarse-grain scheme)
//! and `serve` assembles batches from in-process callers; this crate adds
//! the last hop, where real request traffic actually arrives: a socket.
//! Three modules:
//!
//! - [`proto`] — the versioned `CGRP` handshake and CRC-protected,
//!   length-prefixed binary frames (request: id + deadline budget + `f32`
//!   sample(s); response: probs / rejected / timed-out / shutdown /
//!   error), with pipelining by id and a K-sample streaming kind.
//! - [`poller`] — the `poll(2)` readiness primitive and cross-thread
//!   waker the event loop sleeps on.
//! - [`server`] — [`RpcServer`]: one event-loop thread multiplexing all
//!   connections (non-blocking sockets, per-connection buffers and state
//!   machines, a live-connection admission cap), bridging into the
//!   micro-batcher via completion callbacks, with wakeup-driven graceful
//!   drain and `rpc.*` metrics + trace spans.
//! - [`client`] / [`load`] — [`RpcClient`] (blocking; one *or many*
//!   requests in flight, completions matched by id) and the windowed
//!   load generator + malformed-traffic fuzzer behind `cgdnn load`.
//!
//! Deadlines and backpressure propagate end to end: a frame's µs budget
//! becomes [`serve::Client::infer_with_deadline`], and the batcher's
//! `Rejected`/`TimedOut` come back as typed response frames, so a remote
//! client sees exactly what an in-process one does.

pub mod client;
pub mod load;
pub mod poller;
pub mod proto;
pub mod server;

pub use client::{fetch_stats, Completion, Outcome, RpcClient};
pub use load::{FuzzReport, LoadConfig, LoadReport};
pub use server::{RpcConfig, RpcMetrics, RpcServer};

use std::fmt;

/// Client-side failures. The middle three mirror the server's typed
/// response frames; the rest are local.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RpcError {
    /// Socket-level failure (connect, read, write, timeout).
    Io(String),
    /// The peer violated the wire protocol (bad magic/version/CRC,
    /// mismatched response id, unknown frame kind).
    Protocol(String),
    /// The server's connection admission cap is full; back off and retry.
    Busy,
    /// The sample does not match the server's advertised shape.
    ShapeMismatch {
        /// Values provided.
        got: usize,
        /// Values the handshake promised.
        want: usize,
    },
    /// The server's request queue was full ([`proto::RESP_REJECTED`]).
    Rejected,
    /// The request's deadline budget expired ([`proto::RESP_TIMED_OUT`]).
    TimedOut,
    /// The server is draining or gone ([`proto::RESP_SHUTDOWN`] or EOF).
    ServerShutdown,
    /// The server answered with an error frame; the payload message.
    Server(String),
}

impl fmt::Display for RpcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RpcError::Io(m) => write!(f, "io: {m}"),
            RpcError::Protocol(m) => write!(f, "protocol violation: {m}"),
            RpcError::Busy => write!(f, "server at connection capacity"),
            RpcError::ShapeMismatch { got, want } => {
                write!(f, "sample has {got} values, server expects {want}")
            }
            RpcError::Rejected => write!(f, "request rejected: server queue full"),
            RpcError::TimedOut => write!(f, "request timed out server-side"),
            RpcError::ServerShutdown => write!(f, "server shut down"),
            RpcError::Server(m) => write!(f, "server error: {m}"),
        }
    }
}

impl std::error::Error for RpcError {}

impl From<std::io::Error> for RpcError {
    fn from(e: std::io::Error) -> Self {
        RpcError::Io(e.to_string())
    }
}

impl From<proto::DecodeError> for RpcError {
    fn from(e: proto::DecodeError) -> Self {
        RpcError::Protocol(e.to_string())
    }
}
