//! Closed-loop load generation and malformed-traffic fuzzing over the
//! wire — `cgdnn load`'s engine, and the E17 measurement harness.
//!
//! [`run`] opens `clients` connections up front (failing fast if the
//! server refuses any), then drives each in a closed loop: keep up to
//! [`LoadConfig::pipeline`] requests in flight (1 = the classic
//! send-one-wait-one loop), collect completions as the server finishes
//! them — in any order, matched by frame id — and refill the window.
//! [`LoadConfig::idle_conns`] parked connections can ride along: they
//! handshake, then sit silent for the whole run, proving idle sockets
//! cost the server ~nothing. One refusal is *not* final:
//! a `HELLO_BUSY` greeting ([`RpcError::Busy`] — the server is at its
//! connection-handler cap) is retried with capped exponential backoff and
//! deterministic equal-jitter, up to [`LoadConfig::busy_retries`] times
//! per client, and the total count lands in the report's `busy_retries`
//! column — so a briefly-saturated server degrades the numbers instead of
//! killing the run. Per-request round-trip times are merged at the end
//! into an [`obs::Histogram`] over 1-2-5 µs decades and the report's
//! percentiles come from [`obs::Histogram::quantile`] — the same
//! interpolated estimator the live `cgdnn stats` snapshot uses, so BENCH
//! artifacts and on-demand scrapes derive percentiles one way.
//!
//! [`fuzz`] is deliberate vandalism: seeded-random byte prefixes thrown at
//! the socket — half of them from byte zero (bad magic), half after a
//! valid hello (corrupt frame headers) — to prove the server answers junk
//! with a typed error frame or a clean close, never a panic or a hang.

use crate::client::{Outcome, RpcClient};
use crate::proto;
use crate::RpcError;
use std::collections::HashMap;
use std::fmt;
use std::io::{self, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::time::{Duration, Instant};

/// Load-run shape.
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// Concurrent connections (threads), each with its own closed loop.
    pub clients: usize,
    /// Total requests across all clients.
    pub requests: usize,
    /// Per-request deadline budget in µs; 0 = none.
    pub deadline_us: u32,
    /// Socket I/O timeout per connection.
    pub io_timeout: Duration,
    /// Connect attempts retried per client when the server greets with
    /// `HELLO_BUSY` (handler slots full). 0 = fail fast, the old behaviour.
    pub busy_retries: u32,
    /// Base backoff before the first busy retry; doubles per attempt
    /// (capped at 2 s) with deterministic equal-jitter.
    pub busy_backoff: Duration,
    /// Requests each client keeps in flight (window size); 1 = the
    /// classic closed loop.
    pub pipeline: usize,
    /// Extra connections that handshake and then sit idle for the whole
    /// run — load on the server's connection table, not its compute.
    pub idle_conns: usize,
}

/// Round-trip histogram bounds: 1-2-5 decades from 1 µs to 10 s. Wide
/// enough that loopback runs land mid-range and a pathological stall
/// still falls inside the last finite bucket instead of the +Inf tail.
pub const RTT_BOUNDS_US: [f64; 22] = [
    1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0, 500.0, 1e3, 2e3, 5e3, 1e4, 2e4, 5e4, 1e5, 2e5,
    5e5, 1e6, 2e6, 5e6, 1e7,
];

impl Default for LoadConfig {
    /// 4 clients, 1000 requests, no deadline, 10 s socket timeout, up to
    /// 6 busy retries from a 20 ms base.
    fn default() -> Self {
        Self {
            clients: 4,
            requests: 1000,
            deadline_us: 0,
            io_timeout: Duration::from_secs(10),
            busy_retries: 6,
            busy_backoff: Duration::from_millis(20),
            pipeline: 1,
            idle_conns: 0,
        }
    }
}

/// Outcome counts and round-trip latency distribution of a load run.
#[derive(Debug, Clone, Default)]
pub struct LoadReport {
    /// Requests answered with probabilities.
    pub completed: u64,
    /// Requests bounced by admission control.
    pub rejected: u64,
    /// Requests whose deadline budget expired server-side.
    pub timed_out: u64,
    /// Requests cut short by server drain.
    pub shutdown: u64,
    /// Protocol or socket failures (each ends its client's loop).
    pub errors: u64,
    /// `HELLO_BUSY` connect refusals absorbed by backoff-and-retry.
    pub busy_retries: u64,
    /// Wall time of the whole run.
    pub wall: Duration,
    /// Median round-trip, µs (completed requests only; interpolated from
    /// the [`RTT_BOUNDS_US`] histogram via [`obs::Histogram::quantile`]).
    pub p50_us: f64,
    /// 95th-percentile round-trip, µs (same estimator).
    pub p95_us: f64,
    /// 99th-percentile round-trip, µs (same estimator).
    pub p99_us: f64,
    /// Worst round-trip, µs.
    pub max_us: f64,
    /// Mean round-trip, µs.
    pub mean_us: f64,
}

impl LoadReport {
    /// Completed requests per wall-clock second.
    pub fn throughput_rps(&self) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs > 0.0 {
            self.completed as f64 / secs
        } else {
            0.0
        }
    }

    /// The report as a flat JSON object (the `BENCH_rpc.json` artifact
    /// CI tracks across PRs). Hand-rolled like the rest of the repo's
    /// JSON — no serde in the container.
    pub fn json(&self) -> String {
        format!(
            "{{\n  \"completed\": {},\n  \"rejected\": {},\n  \"timed_out\": {},\n  \
             \"shutdown\": {},\n  \"errors\": {},\n  \"busy_retries\": {},\n  \
             \"wall_secs\": {:.6},\n  \"throughput_rps\": {:.3},\n  \
             \"rtt_p50_us\": {:.3},\n  \"rtt_p95_us\": {:.3},\n  \"rtt_p99_us\": {:.3},\n  \
             \"rtt_max_us\": {:.3},\n  \"rtt_mean_us\": {:.3}\n}}\n",
            self.completed,
            self.rejected,
            self.timed_out,
            self.shutdown,
            self.errors,
            self.busy_retries,
            self.wall.as_secs_f64(),
            self.throughput_rps(),
            self.p50_us,
            self.p95_us,
            self.p99_us,
            self.max_us,
            self.mean_us,
        )
    }

    /// `metric,value` CSV, one line per field (same form factor as the
    /// serving report).
    pub fn csv(&self) -> String {
        let mut out = String::from("metric,value\n");
        for (k, v) in [
            ("completed", self.completed as f64),
            ("rejected", self.rejected as f64),
            ("timed_out", self.timed_out as f64),
            ("shutdown", self.shutdown as f64),
            ("errors", self.errors as f64),
            ("busy_retries", self.busy_retries as f64),
            ("wall_secs", self.wall.as_secs_f64()),
            ("throughput_rps", self.throughput_rps()),
            ("rtt_p50_us", self.p50_us),
            ("rtt_p95_us", self.p95_us),
            ("rtt_p99_us", self.p99_us),
            ("rtt_max_us", self.max_us),
            ("rtt_mean_us", self.mean_us),
        ] {
            out.push_str(&format!("{k},{v:.3}\n"));
        }
        out
    }
}

impl fmt::Display for LoadReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "wire load: {} completed, {} rejected, {} timed out, {} shutdown, {} errors, \
             {} busy retries in {:.3} s ({:.0} req/s)",
            self.completed,
            self.rejected,
            self.timed_out,
            self.shutdown,
            self.errors,
            self.busy_retries,
            self.wall.as_secs_f64(),
            self.throughput_rps(),
        )?;
        write!(
            f,
            "wire RTT us: p50 {:.0}, p95 {:.0}, p99 {:.0}, max {:.0}, mean {:.0}",
            self.p50_us, self.p95_us, self.p99_us, self.max_us, self.mean_us
        )
    }
}

/// Drive a closed-loop load run against `addr`. `samples` are cycled
/// (staggered per client so concurrent batches mix inputs); they must
/// match the server's sample shape.
pub fn run(
    addr: SocketAddr,
    cfg: &LoadConfig,
    samples: &[Vec<f32>],
) -> Result<LoadReport, RpcError> {
    if samples.is_empty() {
        return Err(RpcError::Protocol(
            "load run needs at least one sample".into(),
        ));
    }
    let clients = cfg.clients.max(1);
    // Connect everything first: a refused or half-dead server fails the
    // run instead of polluting the numbers. A `HELLO_BUSY` greeting is
    // the one transient refusal — absorbed by backoff-and-retry.
    let mut busy_retries = 0u64;
    let conns: Vec<RpcClient> = (0..clients)
        .map(|c| connect_busy_retry(addr, cfg, c as u64, &mut busy_retries))
        .collect::<Result<_, _>>()?;
    // Idle riders: handshake, then silence. Held until the run finishes
    // so the server carries them in its connection table throughout.
    let idle: Vec<RpcClient> = (0..cfg.idle_conns)
        .map(|c| connect_busy_retry(addr, cfg, (clients + c) as u64, &mut busy_retries))
        .collect::<Result<_, _>>()?;
    let mut report = LoadReport {
        busy_retries,
        ..LoadReport::default()
    };
    let mut rtts_us: Vec<f64> = Vec::with_capacity(cfg.requests);
    let t0 = Instant::now();
    std::thread::scope(|s| {
        let handles: Vec<_> = conns
            .into_iter()
            .enumerate()
            .map(|(c, mut client)| {
                let quota = cfg.requests / clients + usize::from(c < cfg.requests % clients);
                let deadline_us = cfg.deadline_us;
                let window = cfg.pipeline.max(1);
                s.spawn(move || {
                    let mut part = LoadReport::default();
                    let mut rtts = Vec::with_capacity(quota);
                    let mut pending: HashMap<u64, Instant> = HashMap::with_capacity(window);
                    let mut sent = 0usize;
                    let mut answered = 0usize;
                    'run: while answered < quota {
                        // Refill the window, then collect one completion.
                        while sent < quota && pending.len() < window {
                            let sample = &samples[(c + sent * clients) % samples.len()];
                            let t = Instant::now();
                            match client.send_infer(sample, deadline_us) {
                                Ok(id) => {
                                    pending.insert(id, t);
                                    sent += 1;
                                }
                                Err(_) => {
                                    part.errors += 1;
                                    break 'run;
                                }
                            }
                        }
                        match client.recv_completion() {
                            Ok(comp) => {
                                answered += 1;
                                let t = pending.remove(&comp.id);
                                match comp.outcome {
                                    Outcome::Probs(_) => {
                                        part.completed += 1;
                                        if let Some(t) = t {
                                            rtts.push(t.elapsed().as_secs_f64() * 1e6);
                                        }
                                    }
                                    Outcome::Rejected => part.rejected += 1,
                                    Outcome::TimedOut => part.timed_out += 1,
                                    Outcome::Error(_) => {
                                        part.errors += 1;
                                        break 'run;
                                    }
                                }
                            }
                            Err(RpcError::ServerShutdown) => {
                                // The server is draining: everything this
                                // client still owes is cut short.
                                part.shutdown += (quota - answered) as u64;
                                break 'run;
                            }
                            Err(_) => {
                                part.errors += 1;
                                break 'run;
                            }
                        }
                    }
                    (part, rtts)
                })
            })
            .collect();
        for h in handles {
            let (part, rtts) = h.join().unwrap_or_default();
            report.completed += part.completed;
            report.rejected += part.rejected;
            report.timed_out += part.timed_out;
            report.shutdown += part.shutdown;
            report.errors += part.errors;
            rtts_us.extend(rtts);
        }
    });
    report.wall = t0.elapsed();
    drop(idle); // parked the whole run; close them only now
                // One estimator for every percentile this repo reports: fold the RTTs
                // into an `obs::Histogram` and interpolate, exactly as a `cgdnn stats`
                // scrape of a live server would. Mean and max stay exact — the
                // histogram tracks raw sum/count/extrema alongside the buckets.
    let reg = obs::Registry::new();
    let hist = reg.histogram("load.rtt_us", &RTT_BOUNDS_US);
    for &rtt in &rtts_us {
        hist.observe(rtt);
    }
    report.p50_us = hist.quantile(0.50);
    report.p95_us = hist.quantile(0.95);
    report.p99_us = hist.quantile(0.99);
    report.max_us = hist.max();
    report.mean_us = hist.mean();
    Ok(report)
}

/// Backoff before busy retry `attempt` (1-based): capped exponential with
/// equal-jitter — uniform in `[d/2, d]` where `d = base · 2^(attempt-1)`,
/// capped at 2 s. Jitter comes from the caller's xorshift state, so a
/// seeded run backs off identically every time, while distinct clients
/// (distinct seeds) decorrelate and don't re-stampede the server in sync.
fn busy_backoff_delay(base: Duration, attempt: u32, seed: &mut u64) -> Duration {
    let exp = base
        .saturating_mul(1u32 << (attempt - 1).min(10))
        .min(Duration::from_secs(2));
    let half = exp / 2;
    let span_ns = (exp - half).as_nanos() as u64;
    let jitter_ns = if span_ns == 0 {
        0
    } else {
        xorshift(seed) % (span_ns + 1)
    };
    half + Duration::from_nanos(jitter_ns)
}

/// Connect, absorbing up to `cfg.busy_retries` `HELLO_BUSY` refusals with
/// [`busy_backoff_delay`]; every other error (and a still-busy server
/// after the last retry) propagates unchanged.
fn connect_busy_retry(
    addr: SocketAddr,
    cfg: &LoadConfig,
    client_idx: u64,
    retries: &mut u64,
) -> Result<RpcClient, RpcError> {
    let mut seed = 0x9E37_79B9_7F4A_7C15u64 ^ client_idx.wrapping_mul(0xA24B_AED4_963E_E407) | 1;
    let mut attempt = 0u32;
    loop {
        match RpcClient::connect_with(addr, cfg.io_timeout) {
            Err(RpcError::Busy) if attempt < cfg.busy_retries => {
                attempt += 1;
                *retries += 1;
                std::thread::sleep(busy_backoff_delay(cfg.busy_backoff, attempt, &mut seed));
            }
            other => return other,
        }
    }
}

/// What [`fuzz`] observed.
#[derive(Debug, Clone, Copy, Default)]
pub struct FuzzReport {
    /// Malformed connections attempted.
    pub connections: usize,
    /// Connections the server answered with bytes (an error frame) before
    /// closing; the rest were closed without comment (mid-frame EOF).
    pub answered: usize,
}

/// xorshift64 — deterministic junk without pulling in an RNG crate.
fn xorshift(s: &mut u64) -> u64 {
    let mut x = *s;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *s = x;
    x
}

/// Throw `connections` seeded-random byte prefixes at `addr` — even
/// connections from byte zero (bad magic territory), odd ones after a
/// valid hello (corrupt frame headers) — and read each socket to EOF. The
/// server must survive all of it; every rejection shows up in its
/// `rpc.decode_errors` counter.
pub fn fuzz(
    addr: SocketAddr,
    connections: usize,
    seed: u64,
    io_timeout: Duration,
) -> io::Result<FuzzReport> {
    let mut state = seed | 1;
    let mut report = FuzzReport::default();
    for i in 0..connections {
        let mut s = TcpStream::connect(addr)?;
        s.set_read_timeout(Some(io_timeout))?;
        s.set_write_timeout(Some(io_timeout))?;
        let mut hello = [0u8; proto::SERVER_HELLO_LEN];
        s.read_exact(&mut hello)?; // the server speaks first, even to us
        let mut junk = Vec::new();
        if i % 2 == 1 {
            junk.extend_from_slice(&proto::encode_client_hello());
        }
        let n = 1 + (xorshift(&mut state) % 64) as usize;
        junk.extend((0..n).map(|_| xorshift(&mut state) as u8));
        report.connections += 1;
        if s.write_all(&junk).is_err() {
            continue; // server already slammed the door — that's a pass
        }
        let _ = s.shutdown(Shutdown::Write);
        let mut sink = [0u8; 256];
        let mut answered = false;
        loop {
            match s.read(&mut sink) {
                Ok(0) => break,
                Ok(_) => answered = true,
                Err(_) => break,
            }
        }
        report.answered += usize::from(answered);
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn busy_backoff_is_bounded_equal_jitter() {
        let base = Duration::from_millis(20);
        let mut seed = 12345u64;
        for attempt in 1..=12u32 {
            let d = busy_backoff_delay(base, attempt, &mut seed);
            let exp = base
                .saturating_mul(1u32 << (attempt - 1).min(10))
                .min(Duration::from_secs(2));
            assert!(d >= exp / 2, "attempt {attempt}: {d:?} below {:?}", exp / 2);
            assert!(d <= exp, "attempt {attempt}: {d:?} above {exp:?}");
        }
        // The cap holds no matter how deep the retry goes.
        let d = busy_backoff_delay(base, 40, &mut seed);
        assert!(d <= Duration::from_secs(2));
    }

    #[test]
    fn busy_backoff_is_deterministic_per_seed() {
        let base = Duration::from_millis(10);
        let (mut a, mut b) = (77u64, 77u64);
        for attempt in 1..=6 {
            assert_eq!(
                busy_backoff_delay(base, attempt, &mut a),
                busy_backoff_delay(base, attempt, &mut b)
            );
        }
        // A different seed (client) decorrelates the schedule.
        let mut c = 78u64;
        let schedule = |s: &mut u64| {
            (1..=6)
                .map(|i| busy_backoff_delay(base, i, s))
                .collect::<Vec<_>>()
        };
        assert_ne!(schedule(&mut a), schedule(&mut c));
    }

    #[test]
    fn report_csv_carries_busy_retries() {
        let report = LoadReport {
            busy_retries: 3,
            ..LoadReport::default()
        };
        assert!(report.csv().contains("busy_retries,3.000\n"));
        assert!(report.to_string().contains("3 busy retries"));
    }
}
