//! `RpcServer` — a single-threaded readiness loop multiplexing every
//! connection, bridging decoded wire requests into the `serve`
//! micro-batcher via completion callbacks.
//!
//! One event-loop thread owns the listening socket and every accepted
//! connection. All sockets are non-blocking; the loop sleeps in
//! [`crate::poller::PollSet::wait`] until a socket is ready, a
//! completion callback rings the [`crate::poller::Waker`], or a
//! deadline (stalled writer, drain grace) expires. An **idle** server —
//! even one holding thousands of parked connections — makes zero
//! wakeups: there is no accept-poll tick and no per-connection timeout
//! spin. Compute never runs on the loop: frames are decoded, submitted
//! to the shared [`serve::Client`] with [`serve::Client::submit_async`],
//! and the loop moves on; the micro-batcher's worker invokes the
//! completion callback, which encodes the response frame, queues it,
//! and wakes the loop to write it out.
//!
//! **Connections are state machines, not threads.** Each holds a read
//! buffer (bytes off the wire, parsed as they complete), a write buffer
//! (responses queued until the socket accepts them), and a state:
//!
//! ```text
//! hello ──client hello ok──▶ open ──drain/EOF/fatal error──▶ closing ──flushed──▶ gone
//! ```
//!
//! Because responses are queued as their micro-batches complete, a
//! connection may have many requests in flight and receive the answers
//! **out of order** — the CGRP frame `id` (echoed on every response) is
//! the correlation key, and [`proto::REQ_INFER_STREAM`] lets one frame
//! carry K samples answered by K id-sharing responses (`aux` = sample
//! index). Back-pressure is per-connection: a peer that stops reading
//! grows its write buffer to `max_wbuf`, at which point the loop stops
//! *reading* from it (no new requests), and a write stalled past
//! `write_timeout` drops the connection.
//!
//! **Admission** is a live-connection cap decided before the hello goes
//! out: over the cap means [`proto::HELLO_BUSY`] and close (the
//! client-side back-off signal), and the seat is released only at
//! connection teardown — "busy" means what it says, regardless of how
//! the connection spends its lifetime.
//!
//! **Drain** (`shutdown()` or a client's [`proto::REQ_DRAIN`] observed
//! by the owner) is wakeup-driven: the stop flag plus a wake reach the
//! loop immediately, which closes the listener, answers what is in
//! flight, writes [`proto::RESP_SHUTDOWN`] on every connection, flushes,
//! and exits — bounded by `drain_grace` so a stalled peer cannot wedge
//! it. A client blocked in `read` sees a shutdown frame or a clean FIN.
//!
//! Decode errors never panic and never take down the server: a bad
//! hello or corrupt header poisons only its own connection (error
//! frame, then close — a byte stream cannot be resynchronised after an
//! untrustworthy length prefix), while an intact header with an
//! unexpected kind or payload length is answered with
//! [`proto::RESP_ERROR`] and the connection lives on. Every rejection
//! bumps `rpc.decode_errors`.

use crate::poller::{PollSet, WakePipe, Waker};
use crate::proto::{self, DecodeError};
use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::os::unix::io::AsRawFd;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, AtomicI64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Tuning knobs for the wire front-end.
#[derive(Debug, Clone)]
pub struct RpcConfig {
    /// Serve-pool sizing hint: with `max_connections == 0` the live
    /// connection cap defaults to `handlers + backlog`, preserving the
    /// admission behavior of the old thread-per-connection pool.
    pub handlers: usize,
    /// See `handlers` — second term of the default connection cap.
    pub backlog: usize,
    /// Unused by the readiness loop (sockets are non-blocking; drain is
    /// wakeup-driven). Retained so existing configurations keep
    /// compiling and CLI flags keep parsing.
    pub read_timeout: Duration,
    /// How long a connection's pending response bytes may sit unwritten
    /// while the peer refuses them; past this the connection is dropped.
    pub write_timeout: Duration,
    /// Per-frame payload cap; headers announcing more are decode errors.
    pub max_payload: u32,
    /// Max live connections; one more is greeted with
    /// [`proto::HELLO_BUSY`] and closed. `0` = `handlers + backlog`.
    pub max_connections: usize,
    /// Per-connection pending-write cap: past this the loop stops
    /// reading new requests from that connection until the peer drains
    /// its responses (flow control, not an error).
    pub max_wbuf: usize,
    /// Hard bound on the drain flush: connections still holding
    /// unflushed bytes this long after shutdown began are cut off.
    pub drain_grace: Duration,
}

impl Default for RpcConfig {
    /// Cap of 24 live connections (8 + 16); 1 s write stall budget.
    fn default() -> Self {
        Self {
            handlers: 8,
            backlog: 16,
            read_timeout: Duration::from_millis(100),
            write_timeout: Duration::from_secs(1),
            max_payload: proto::MAX_PAYLOAD,
            max_connections: 0,
            max_wbuf: 1 << 20,
            drain_grace: Duration::from_secs(5),
        }
    }
}

impl RpcConfig {
    /// The effective live-connection cap.
    fn conn_cap(&self) -> usize {
        if self.max_connections > 0 {
            self.max_connections
        } else {
            (self.handlers + self.backlog).max(1)
        }
    }
}

/// Cached `rpc.*` registry handles; every update is a few atomics.
pub struct RpcMetrics {
    /// Connections accepted (including busy-rejected ones).
    pub connections: obs::Counter,
    /// Connections refused with [`proto::HELLO_BUSY`].
    pub rejected_connections: obs::Counter,
    /// Currently served connections (gauge `rpc.active_connections`).
    pub active_connections: obs::Gauge,
    /// Request frames with a valid header.
    pub frames_in: obs::Counter,
    /// Response frames written.
    pub frames_out: obs::Counter,
    /// Bytes read off the wire.
    pub bytes_in: obs::Counter,
    /// Bytes written to the wire.
    pub bytes_out: obs::Counter,
    /// Malformed hellos/headers/payloads rejected (see [`DecodeError`]).
    pub decode_errors: obs::Counter,
    /// Socket-level read/write failures (resets, stalled writers).
    pub io_errors: obs::Counter,
    /// Infer requests answered with probabilities.
    pub completed: obs::Counter,
    /// Infer requests answered with [`proto::RESP_REJECTED`].
    pub rejected: obs::Counter,
    /// Infer requests answered with [`proto::RESP_TIMED_OUT`].
    pub timed_out: obs::Counter,
    /// Per-connection panics survived (the loop keeps serving).
    pub handler_panics: obs::Counter,
    /// Decode-to-response latency of answered infer frames.
    pub frame_seconds: obs::Histogram,
    /// Event-loop wakeups — the idle-cost gauge: an idle server adds
    /// ~nothing here no matter how many connections it holds.
    pub loop_wakeups: obs::Counter,
    /// All frames either direction (`frames_in + frames_out`) — the
    /// single liveness number a `cgdnn stats` scrape checks first.
    pub frames_total: obs::Counter,
    /// Wall time of one loop iteration's work (poll return to next poll),
    /// excluding the sleep itself — event-loop latency health.
    pub loop_iter_seconds: obs::Histogram,
    /// Connections currently mid-handshake (gauge `rpc.conns_hello`).
    pub conns_hello: obs::Gauge,
    /// Connections currently serving frames (gauge `rpc.conns_open`).
    pub conns_open: obs::Gauge,
    /// Connections flushing before teardown (gauge `rpc.conns_closing`).
    pub conns_closing: obs::Gauge,
    /// Stall-watchdog kills: writers stuck past `write_timeout`.
    pub stalled_conns_reaped: obs::Counter,
    /// Decode-to-response service time in µs, reservoir-sampled so a
    /// stats scrape carries true quantiles (p50/p90/p99), not just the
    /// `frame_seconds` bucket shape.
    pub frame_service_us: obs::Summary,
    active: AtomicI64,
}

impl RpcMetrics {
    /// Resolve the `rpc.*` handles in `reg` (usually
    /// [`obs::registry::global`]; tests pass their own registry).
    pub fn register(reg: &obs::Registry) -> Arc<Self> {
        Arc::new(Self {
            connections: reg.counter("rpc.connections"),
            rejected_connections: reg.counter("rpc.rejected_connections"),
            active_connections: reg.gauge("rpc.active_connections"),
            frames_in: reg.counter("rpc.frames_in"),
            frames_out: reg.counter("rpc.frames_out"),
            bytes_in: reg.counter("rpc.bytes_in"),
            bytes_out: reg.counter("rpc.bytes_out"),
            decode_errors: reg.counter("rpc.decode_errors"),
            io_errors: reg.counter("rpc.io_errors"),
            completed: reg.counter("rpc.completed"),
            rejected: reg.counter("rpc.rejected"),
            timed_out: reg.counter("rpc.timed_out"),
            handler_panics: reg.counter("rpc.handler_panics"),
            frame_seconds: reg.histogram("rpc.frame_seconds", &obs::registry::DURATION_BOUNDS_SECS),
            loop_wakeups: reg.counter("rpc.loop_wakeups"),
            frames_total: reg.counter("rpc.frames_total"),
            loop_iter_seconds: reg.histogram(
                "rpc.loop_iter_seconds",
                &obs::registry::DURATION_BOUNDS_SECS,
            ),
            conns_hello: reg.gauge("rpc.conns_hello"),
            conns_open: reg.gauge("rpc.conns_open"),
            conns_closing: reg.gauge("rpc.conns_closing"),
            stalled_conns_reaped: reg.counter("rpc.stalled_conns_reaped"),
            frame_service_us: reg.summary("rpc.frame_service_us"),
            active: AtomicI64::new(0),
        })
    }

    fn conn_opened(&self) {
        let n = self.active.fetch_add(1, Ordering::SeqCst) + 1;
        self.active_connections.set(n as f64);
    }

    fn conn_closed(&self) {
        let n = self.active.fetch_sub(1, Ordering::SeqCst) - 1;
        self.active_connections.set(n as f64);
    }
}

/// The running wire front-end. Dropping it signals the loop to stop;
/// [`RpcServer::shutdown`] performs the graceful drain and joins it.
pub struct RpcServer {
    local_addr: SocketAddr,
    stop: Arc<AtomicBool>,
    drain: Arc<AtomicBool>,
    waker: Waker,
    event_loop: Option<JoinHandle<()>>,
    metrics: Arc<RpcMetrics>,
}

impl RpcServer {
    /// Bind `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and start
    /// serving `bridge`. `output_len` is what the server hello advertises
    /// (take it from [`serve::Server::output_len`]); `reg` receives the
    /// `rpc.*` metrics.
    pub fn start(
        addr: impl ToSocketAddrs,
        bridge: serve::Client<f32>,
        output_len: usize,
        cfg: RpcConfig,
        reg: &obs::Registry,
    ) -> io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let drain = Arc::new(AtomicBool::new(false));
        let metrics = RpcMetrics::register(reg);
        let (wake_rx, waker) = WakePipe::new()?;
        let sample_len = bridge.sample_len();
        let mut el = EventLoop {
            listener: Some(listener),
            conns: HashMap::new(),
            next_conn: 0,
            poll: PollSet::new(),
            wake_rx,
            waker: waker.clone(),
            completions: Arc::new(Mutex::new(Vec::new())),
            bridge,
            stop: Arc::clone(&stop),
            drain: Arc::clone(&drain),
            metrics: Arc::clone(&metrics),
            hello_ok: proto::encode_server_hello(
                proto::HELLO_OK,
                sample_len as u32,
                output_len as u32,
            ),
            hello_busy: proto::encode_server_hello(
                proto::HELLO_BUSY,
                sample_len as u32,
                output_len as u32,
            ),
            sample_len,
            cap: cfg.conn_cap(),
            cfg,
            draining: false,
            drain_deadline: None,
            accept_retry_at: None,
        };
        let event_loop = std::thread::Builder::new()
            .name("rpc-eventloop".into())
            .spawn(move || el.run())?;
        Ok(Self {
            local_addr,
            stop,
            drain,
            waker,
            event_loop: Some(event_loop),
            metrics,
        })
    }

    /// The bound address (resolves `:0` to the ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Whether some client sent [`proto::REQ_DRAIN`]. The owner polls this
    /// and calls [`RpcServer::shutdown`] — the drain frame requests, it
    /// does not force.
    pub fn drain_requested(&self) -> bool {
        self.drain.load(Ordering::SeqCst)
    }

    /// The `rpc.*` metrics handles.
    pub fn metrics(&self) -> Arc<RpcMetrics> {
        Arc::clone(&self.metrics)
    }

    /// Graceful drain: stop accepting, answer in-flight frames, send
    /// [`proto::RESP_SHUTDOWN`] on every live connection, flush, close,
    /// and join the loop. Bounded by `drain_grace` plus the in-flight
    /// work — a stalled peer cannot wedge it.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        self.waker.wake();
        if let Some(t) = self.event_loop.take() {
            let _ = t.join();
        }
    }
}

impl Drop for RpcServer {
    fn drop(&mut self) {
        // Belt and suspenders for the no-shutdown path: the wake reaches
        // the loop immediately; joining is shutdown()'s job.
        self.stop.store(true, Ordering::SeqCst);
        self.waker.wake();
    }
}

/// A response finished by the micro-batcher, waiting for the loop to
/// append it to its connection's write buffer.
struct Completion {
    conn: u64,
    /// The fully encoded response frame (header + payload).
    frame: Vec<u8>,
    /// When the request frame was decoded, for `rpc.frame_seconds`.
    t0: Instant,
    /// Close the connection after flushing (serve tier shut down).
    close_after: bool,
}

/// Connection lifecycle. `Hello` = our hello is sent/queued, the
/// client's hasn't arrived; `Open` = handshake complete, frames flow;
/// `Closing` = flush the write buffer, then tear down.
#[derive(PartialEq, Clone, Copy)]
enum ConnState {
    Hello,
    Open,
    Closing,
}

/// One multiplexed connection: socket + buffers + state machine.
struct Conn {
    stream: TcpStream,
    state: ConnState,
    /// Unparsed inbound bytes (`rstart..` is live).
    rbuf: Vec<u8>,
    rstart: usize,
    /// Queued outbound bytes (`wstart..` is unwritten).
    wbuf: Vec<u8>,
    wstart: usize,
    /// Responses the micro-batcher still owes this connection.
    inflight: usize,
    /// Peer half-closed cleanly; close once the last response flushes.
    got_eof: bool,
    /// When the current write stall began (pending bytes + WouldBlock).
    stalled_since: Option<Instant>,
    /// Lifetime trace span; ends when the connection is dropped.
    _span: Option<obs::trace::Span>,
}

impl Conn {
    fn pending_write(&self) -> usize {
        self.wbuf.len() - self.wstart
    }

    fn queue(&mut self, bytes: &[u8]) {
        self.wbuf.extend_from_slice(bytes);
    }
}

/// Encode a complete response frame (header + payload) into one buffer.
fn encode_frame(kind: u8, id: u64, aux: u32, payload: &[u8]) -> Vec<u8> {
    let head = proto::encode_header(kind, id, aux, payload.len() as u32);
    let mut frame = Vec::with_capacity(head.len() + payload.len());
    frame.extend_from_slice(&head);
    frame.extend_from_slice(payload);
    frame
}

struct EventLoop {
    listener: Option<TcpListener>,
    conns: HashMap<u64, Conn>,
    next_conn: u64,
    poll: PollSet,
    wake_rx: WakePipe,
    waker: Waker,
    completions: Arc<Mutex<Vec<Completion>>>,
    bridge: serve::Client<f32>,
    stop: Arc<AtomicBool>,
    drain: Arc<AtomicBool>,
    metrics: Arc<RpcMetrics>,
    hello_ok: [u8; proto::SERVER_HELLO_LEN],
    hello_busy: [u8; proto::SERVER_HELLO_LEN],
    sample_len: usize,
    cap: usize,
    cfg: RpcConfig,
    draining: bool,
    drain_deadline: Option<Instant>,
    /// Back-off after a non-WouldBlock accept error (e.g. EMFILE), so
    /// the loop doesn't spin on a listener that keeps failing.
    accept_retry_at: Option<Instant>,
}

/// How long to keep the listener quiet after an accept error.
const ACCEPT_ERROR_BACKOFF: Duration = Duration::from_millis(10);

impl EventLoop {
    fn run(&mut self) {
        loop {
            if self.stop.load(Ordering::SeqCst) && !self.draining {
                self.begin_drain();
            }
            if self.draining {
                let deadline = self.drain_deadline.expect("set by begin_drain");
                if self.conns.is_empty() || Instant::now() >= deadline {
                    return; // dropping conns closes the sockets
                }
            }

            let (listener_slot, conn_slots, wake_slot) = self.build_poll_set();
            let timeout = self.next_timeout();
            if self.poll.wait(timeout).is_err() {
                // poll(2) only fails on EINVAL/ENOMEM here; treat as fatal.
                return;
            }
            self.metrics.loop_wakeups.inc();
            let iter_t0 = Instant::now();
            if self.poll.readable(wake_slot) {
                self.wake_rx.drain();
            }
            self.apply_completions();
            if let Some(slot) = listener_slot {
                if self.poll.readable(slot) {
                    self.accept_ready();
                }
            } else if !self.draining && self.accept_retry_at.is_some_and(|at| Instant::now() >= at)
            {
                self.accept_retry_at = None;
                self.accept_ready();
            }
            for (id, slot) in conn_slots {
                self.service_conn(id, slot);
            }
            self.reap_closing();
            // Work time only — the poll sleep is idleness, not latency.
            self.metrics
                .loop_iter_seconds
                .observe(iter_t0.elapsed().as_secs_f64());
        }
    }

    /// Register every fd of interest for this iteration. Returns the
    /// listener slot (if accepting), per-connection slots, and the
    /// waker slot.
    #[allow(clippy::type_complexity)]
    fn build_poll_set(&mut self) -> (Option<usize>, Vec<(u64, Option<usize>)>, usize) {
        self.poll.clear();
        let accepting = !self.draining && self.accept_retry_at.is_none() && self.listener.is_some();
        let listener_slot = if accepting {
            let fd = self.listener.as_ref().expect("checked").as_raw_fd();
            Some(self.poll.push(fd, true, false))
        } else {
            None
        };
        let wake_slot = self.poll.push(self.wake_rx.fd(), true, false);
        let mut conn_slots = Vec::with_capacity(self.conns.len());
        let (mut hello, mut open, mut closing) = (0u64, 0u64, 0u64);
        for (&id, c) in &self.conns {
            match c.state {
                ConnState::Hello => hello += 1,
                ConnState::Open => open += 1,
                ConnState::Closing => closing += 1,
            }
            let want_read = !self.draining
                && !c.got_eof
                && c.state != ConnState::Closing
                && c.pending_write() < self.cfg.max_wbuf;
            let want_write = c.pending_write() > 0;
            let slot = if want_read || want_write {
                Some(self.poll.push(c.stream.as_raw_fd(), want_read, want_write))
            } else {
                // Parked: waiting on in-flight completions only.
                None
            };
            conn_slots.push((id, slot));
        }
        self.metrics.conns_hello.set(hello as f64);
        self.metrics.conns_open.set(open as f64);
        self.metrics.conns_closing.set(closing as f64);
        (listener_slot, conn_slots, wake_slot)
    }

    /// The earliest deadline the loop must wake for, if any. An idle
    /// server has none and sleeps indefinitely.
    fn next_timeout(&self) -> Option<Duration> {
        let now = Instant::now();
        let mut deadline: Option<Instant> = self.drain_deadline;
        if let Some(at) = self.accept_retry_at {
            deadline = Some(deadline.map_or(at, |d| d.min(at)));
        }
        for c in self.conns.values() {
            if let Some(since) = c.stalled_since {
                let at = since + self.cfg.write_timeout;
                deadline = Some(deadline.map_or(at, |d| d.min(at)));
            }
        }
        deadline.map(|d| d.saturating_duration_since(now))
    }

    /// Stop accepting and queue the shutdown goodbye on every
    /// connection with no responses outstanding.
    fn begin_drain(&mut self) {
        self.draining = true;
        self.drain_deadline = Some(Instant::now() + self.cfg.drain_grace);
        self.listener = None;
        let m = Arc::clone(&self.metrics);
        for c in self.conns.values_mut() {
            if c.state != ConnState::Closing && c.inflight == 0 {
                let frame = encode_frame(proto::RESP_SHUTDOWN, 0, 0, &[]);
                m.frames_out.inc();
                m.frames_total.inc();
                m.bytes_out.add(frame.len() as u64);
                c.queue(&frame);
                c.state = ConnState::Closing;
            }
        }
    }

    /// Move finished micro-batch responses into their connections'
    /// write buffers.
    fn apply_completions(&mut self) {
        let batch = {
            let mut q = self.completions.lock().unwrap_or_else(|p| p.into_inner());
            std::mem::take(&mut *q)
        };
        for comp in batch {
            let Some(c) = self.conns.get_mut(&comp.conn) else {
                continue; // connection died while the batch ran
            };
            c.inflight -= 1;
            self.metrics.frames_out.inc();
            self.metrics.frames_total.inc();
            self.metrics.bytes_out.add(comp.frame.len() as u64);
            let service = comp.t0.elapsed();
            self.metrics.frame_seconds.observe(service.as_secs_f64());
            self.metrics
                .frame_service_us
                .observe(service.as_secs_f64() * 1e6);
            c.queue(&comp.frame);
            if comp.close_after && c.state != ConnState::Closing {
                c.state = ConnState::Closing;
            }
            if c.inflight == 0 && c.state != ConnState::Closing && (self.draining || c.got_eof) {
                if self.draining {
                    let frame = encode_frame(proto::RESP_SHUTDOWN, 0, 0, &[]);
                    self.metrics.frames_out.inc();
                    self.metrics.frames_total.inc();
                    self.metrics.bytes_out.add(frame.len() as u64);
                    c.queue(&frame);
                }
                c.state = ConnState::Closing;
            }
        }
    }

    /// Accept until the listener would block. Admission is decided
    /// against the live-connection count *before* the hello goes out.
    fn accept_ready(&mut self) {
        loop {
            let Some(listener) = self.listener.as_ref() else {
                return;
            };
            match listener.accept() {
                Ok((stream, _)) => {
                    self.metrics.connections.inc();
                    let _ = stream.set_nonblocking(true);
                    let _ = stream.set_nodelay(true);
                    if self.conns.len() >= self.cap {
                        // Over the cap: the hello carries the verdict, so
                        // the client backs off instead of discovering a
                        // dead connection one frame later. A fresh socket
                        // buffer always takes 16 bytes.
                        self.metrics.rejected_connections.inc();
                        let _ = (&stream).write(&self.hello_busy);
                        let _ = stream.shutdown(Shutdown::Both);
                        continue;
                    }
                    let id = self.next_conn;
                    self.next_conn += 1;
                    self.metrics.conn_opened();
                    self.metrics.bytes_out.add(self.hello_ok.len() as u64);
                    let mut conn = Conn {
                        stream,
                        state: ConnState::Hello,
                        rbuf: Vec::new(),
                        rstart: 0,
                        wbuf: Vec::new(),
                        wstart: 0,
                        inflight: 0,
                        got_eof: false,
                        stalled_since: None,
                        _span: obs::trace::span("conn", "rpc"),
                    };
                    conn.queue(&self.hello_ok);
                    self.conns.insert(id, conn);
                    // Flush the hello now — the common case writes it in
                    // one call and the client's handshake completes
                    // without waiting for another loop turn.
                    self.service_conn(id, None);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(_) => {
                    // Transient accept failure (EMFILE, aborted peer):
                    // leave the listener out of the poll set briefly so
                    // a persistent error can't spin the loop.
                    self.accept_retry_at = Some(Instant::now() + ACCEPT_ERROR_BACKOFF);
                    return;
                }
            }
        }
    }

    /// Run one connection's read/parse/dispatch/write turn; a panic
    /// poisons only this connection.
    fn service_conn(&mut self, id: u64, slot: Option<usize>) {
        if !self.conns.contains_key(&id) {
            return;
        }
        let readable = slot.is_some_and(|s| self.poll.readable(s));
        let alive = std::panic::catch_unwind(AssertUnwindSafe(|| {
            let mut ok = true;
            if readable {
                ok = self.conn_read(id);
            }
            if ok {
                ok = self.conn_flush(id);
            }
            if ok {
                // Flushing may have freed write-buffer headroom; parse
                // any requests flow control had left in the read buffer.
                ok = self.parse_ready(id) || self.conn_flush(id);
            }
            ok
        }));
        match alive {
            Ok(true) => {}
            Ok(false) => self.kill_conn(id),
            Err(_) => {
                self.metrics.handler_panics.inc();
                self.kill_conn(id);
            }
        }
    }

    /// Drop a connection immediately (fatal I/O error or panic).
    fn kill_conn(&mut self, id: u64) {
        if self.conns.remove(&id).is_some() {
            self.metrics.conn_closed();
        }
    }

    /// Closing connections with nothing left to write are done; so are
    /// stalled writers past their budget (checked here so a timeout
    /// fires even when poll reported no events for the socket).
    fn reap_closing(&mut self) {
        let now = Instant::now();
        let mut dead = Vec::new();
        for (&id, c) in &self.conns {
            if c.state == ConnState::Closing && c.pending_write() == 0 {
                dead.push((id, false));
            } else if c
                .stalled_since
                .is_some_and(|s| now.duration_since(s) >= self.cfg.write_timeout)
            {
                dead.push((id, true));
            }
        }
        for (id, timed_out) in dead {
            if timed_out {
                // Stall watchdog: the peer refused our bytes for the whole
                // write_timeout budget.
                self.metrics.io_errors.inc();
                self.metrics.stalled_conns_reaped.inc();
            }
            if let Some(c) = self.conns.remove(&id) {
                let _ = c.stream.shutdown(Shutdown::Both);
                self.metrics.conn_closed();
            }
        }
    }

    /// Read whatever the socket has, then parse complete hello/frames
    /// out of the buffer. Returns `false` if the connection must die
    /// without flushing (mid-frame disconnect, I/O error).
    fn conn_read(&mut self, id: u64) -> bool {
        let mut scratch = [0u8; 16 * 1024];
        loop {
            let c = self.conns.get_mut(&id).expect("caller holds a live id");
            match c.stream.read(&mut scratch) {
                Ok(0) => {
                    let partial = c.rstart < c.rbuf.len();
                    if partial {
                        // EOF inside a hello/header/payload: stream
                        // corruption, nothing more to answer.
                        self.metrics.decode_errors.inc();
                        return false;
                    }
                    c.got_eof = true;
                    if c.inflight == 0 && c.state != ConnState::Closing {
                        // Clean goodbye: flush anything queued and close.
                        c.state = ConnState::Closing;
                    }
                    return true;
                }
                Ok(n) => {
                    self.metrics.bytes_in.add(n as u64);
                    c.rbuf.extend_from_slice(&scratch[..n]);
                    if !self.parse_ready(id) {
                        return true; // parse error queued a goodbye; flush it
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return true,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => {
                    self.metrics.io_errors.inc();
                    return false;
                }
            }
        }
    }

    /// Parse every complete message in the read buffer. Returns `false`
    /// once the connection has entered `Closing` (fatal decode error or
    /// drain ack) — remaining input is discarded.
    fn parse_ready(&mut self, id: u64) -> bool {
        loop {
            let c = self.conns.get_mut(&id).expect("caller holds a live id");
            if c.state == ConnState::Closing || c.pending_write() >= self.cfg.max_wbuf {
                // Flow control: stop decoding while the peer isn't
                // draining responses; unread requests stay in rbuf.
                break;
            }
            let avail = c.rbuf.len() - c.rstart;
            match c.state {
                ConnState::Hello => {
                    if avail < proto::CLIENT_HELLO_LEN {
                        break;
                    }
                    let hb = &c.rbuf[c.rstart..c.rstart + proto::CLIENT_HELLO_LEN];
                    match proto::decode_client_hello(hb.try_into().expect("sized slice")) {
                        Ok(()) => {
                            c.rstart += proto::CLIENT_HELLO_LEN;
                            c.state = ConnState::Open;
                        }
                        Err(e) => {
                            self.fatal_frame_error(id, 0, &e.to_string());
                            break;
                        }
                    }
                }
                ConnState::Open => {
                    if avail < proto::FRAME_HEADER_LEN {
                        break;
                    }
                    let hb = &c.rbuf[c.rstart..c.rstart + proto::FRAME_HEADER_LEN];
                    let header = match proto::decode_header(hb.try_into().expect("sized slice")) {
                        Ok(h) => h,
                        Err(e) => {
                            // No trustworthy payload_len to resync on.
                            self.fatal_frame_error(id, 0, &e.to_string());
                            break;
                        }
                    };
                    if header.payload_len > self.cfg.max_payload {
                        // Reject before buffering a byte of it.
                        let e = DecodeError::Oversize {
                            len: header.payload_len,
                            max: self.cfg.max_payload,
                        };
                        self.fatal_frame_error(id, header.id, &e.to_string());
                        break;
                    }
                    let frame_len = proto::FRAME_HEADER_LEN + header.payload_len as usize;
                    if avail < frame_len {
                        break;
                    }
                    self.metrics.frames_in.inc();
                    self.metrics.frames_total.inc();
                    let _frame_span = obs::trace::span("frame", "rpc");
                    let payload_at = c.rstart + proto::FRAME_HEADER_LEN;
                    let payload: Vec<u8> =
                        c.rbuf[payload_at..payload_at + header.payload_len as usize].to_vec();
                    c.rstart += frame_len;
                    self.dispatch(id, header, &payload);
                }
                ConnState::Closing => break,
            }
        }
        // Compact the consumed prefix so the buffer doesn't grow forever.
        let c = self.conns.get_mut(&id).expect("caller holds a live id");
        if c.rstart > 0 {
            c.rbuf.drain(..c.rstart);
            c.rstart = 0;
        }
        c.state != ConnState::Closing
    }

    /// Decode failure that poisons the connection: count it, explain it,
    /// start closing.
    fn fatal_frame_error(&mut self, id: u64, frame_id: u64, msg: &str) {
        self.metrics.decode_errors.inc();
        self.queue_response(id, proto::RESP_ERROR, frame_id, 0, msg.as_bytes());
        if let Some(c) = self.conns.get_mut(&id) {
            c.state = ConnState::Closing;
        }
    }

    /// Append an encoded response frame to a connection's write buffer.
    fn queue_response(&mut self, id: u64, kind: u8, frame_id: u64, aux: u32, payload: &[u8]) {
        let frame = encode_frame(kind, frame_id, aux, payload);
        self.metrics.frames_out.inc();
        self.metrics.frames_total.inc();
        self.metrics.bytes_out.add(frame.len() as u64);
        if let Some(c) = self.conns.get_mut(&id) {
            c.queue(&frame);
        }
    }

    /// Act on one complete, CRC-valid frame.
    fn dispatch(&mut self, id: u64, header: proto::FrameHeader, payload: &[u8]) {
        let m = &self.metrics;
        let sample_bytes = self.sample_len * std::mem::size_of::<f32>();
        match header.kind {
            proto::REQ_DRAIN => {
                // Surface the request to the owner (who decides to
                // stop); acknowledge so the drainer can hang up.
                self.drain.store(true, Ordering::SeqCst);
                self.queue_response(id, proto::RESP_SHUTDOWN, header.id, 0, &[]);
            }
            proto::FRAME_STATS => {
                // Read-only registry scrape, answered synchronously on the
                // loop (a snapshot is a few atomic loads per metric — no
                // compute, no serve-tier round trip, so in-flight requests
                // are undisturbed). The snapshot is of the process-global
                // registry: that is where the trainer/serving/rpc tiers
                // publish, and it is what `--metrics` would export.
                let bytes = obs::registry::global().snapshot().to_bytes();
                let chunk = proto::MAX_CHUNK_F32S * std::mem::size_of::<f32>();
                let n_chunks = bytes.len().div_ceil(chunk).max(1);
                // to_bytes() always emits the 4-byte count, so there is at
                // least one chunk.
                for (i, part) in bytes.chunks(chunk).enumerate() {
                    let aux = proto::encode_chunk_aux(i, n_chunks);
                    self.queue_response(id, proto::FRAME_STATS, header.id, aux, part);
                }
            }
            proto::REQ_INFER if payload.len() != sample_bytes => {
                m.decode_errors.inc();
                let msg = format!(
                    "infer payload is {} bytes, sample shape needs {sample_bytes}",
                    payload.len()
                );
                self.queue_response(id, proto::RESP_ERROR, header.id, 0, msg.as_bytes());
            }
            proto::REQ_INFER => {
                let sample = proto::read_f32s(payload).expect("length checked above");
                self.submit_sample(id, header.id, 0, sample, header.aux);
            }
            proto::REQ_INFER_STREAM
                if payload.is_empty() || !payload.len().is_multiple_of(sample_bytes) =>
            {
                m.decode_errors.inc();
                let msg = format!(
                    "stream payload is {} bytes, need a positive multiple of {sample_bytes}",
                    payload.len()
                );
                self.queue_response(id, proto::RESP_ERROR, header.id, 0, msg.as_bytes());
            }
            proto::REQ_INFER_STREAM => {
                let flat = proto::read_f32s(payload).expect("length checked above");
                for (k, sample) in flat.chunks_exact(self.sample_len).enumerate() {
                    self.submit_sample(id, header.id, k as u32, sample.to_vec(), header.aux);
                }
            }
            k => {
                m.decode_errors.inc();
                let msg = format!("unknown request kind {k}");
                self.queue_response(id, proto::RESP_ERROR, header.id, 0, msg.as_bytes());
            }
        }
    }

    /// Hand one sample to the micro-batcher. The completion callback —
    /// run on a serve worker — encodes the response frame, queues it,
    /// and wakes the loop. Synchronous verdicts (queue full, serve tier
    /// closed) are answered in place.
    fn submit_sample(&mut self, id: u64, frame_id: u64, index: u32, sample: Vec<f32>, budget: u32) {
        let deadline = (budget > 0).then(|| Instant::now() + Duration::from_micros(budget.into()));
        let t0 = Instant::now();
        let comps = Arc::clone(&self.completions);
        let waker = self.waker.clone();
        let metrics = Arc::clone(&self.metrics);
        let res = self.bridge.submit_async(sample, deadline, move |r| {
            let (frame, close_after) = match r {
                Ok(out) => {
                    let mut p = Vec::new();
                    proto::write_f32s(&mut p, &out);
                    metrics.completed.inc();
                    (encode_frame(proto::RESP_PROBS, frame_id, index, &p), false)
                }
                Err(serve::ServeError::Rejected) => {
                    metrics.rejected.inc();
                    (
                        encode_frame(proto::RESP_REJECTED, frame_id, index, &[]),
                        false,
                    )
                }
                Err(serve::ServeError::TimedOut) => {
                    metrics.timed_out.inc();
                    (
                        encode_frame(proto::RESP_TIMED_OUT, frame_id, index, &[]),
                        false,
                    )
                }
                Err(serve::ServeError::Closed) => (
                    encode_frame(proto::RESP_SHUTDOWN, frame_id, index, &[]),
                    true,
                ),
                Err(e) => (
                    encode_frame(proto::RESP_ERROR, frame_id, index, e.to_string().as_bytes()),
                    false,
                ),
            };
            let mut q = comps.lock().unwrap_or_else(|p| p.into_inner());
            q.push(Completion {
                conn: id,
                frame,
                t0,
                close_after,
            });
            drop(q);
            waker.wake();
        });
        match res {
            Ok(()) => {
                if let Some(c) = self.conns.get_mut(&id) {
                    c.inflight += 1;
                }
            }
            Err(serve::ServeError::Rejected) => {
                self.metrics.rejected.inc();
                self.queue_response(id, proto::RESP_REJECTED, frame_id, index, &[]);
                self.metrics
                    .frame_seconds
                    .observe(t0.elapsed().as_secs_f64());
            }
            Err(serve::ServeError::Closed) => {
                self.queue_response(id, proto::RESP_SHUTDOWN, frame_id, index, &[]);
                if let Some(c) = self.conns.get_mut(&id) {
                    c.state = ConnState::Closing;
                }
            }
            Err(e) => {
                // BadInput is pre-checked; anything else is surfaced.
                self.queue_response(
                    id,
                    proto::RESP_ERROR,
                    frame_id,
                    index,
                    e.to_string().as_bytes(),
                );
            }
        }
    }

    /// Push pending bytes at the socket. Returns `false` on a fatal
    /// write error.
    fn conn_flush(&mut self, id: u64) -> bool {
        let cfg_write_timeout = self.cfg.write_timeout;
        let c = self.conns.get_mut(&id).expect("caller holds a live id");
        while c.wstart < c.wbuf.len() {
            match c.stream.write(&c.wbuf[c.wstart..]) {
                Ok(0) => {
                    self.metrics.io_errors.inc();
                    return false;
                }
                Ok(n) => {
                    c.wstart += n;
                    c.stalled_since = None;
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    let since = *c.stalled_since.get_or_insert_with(Instant::now);
                    if since.elapsed() >= cfg_write_timeout {
                        self.metrics.io_errors.inc();
                        return false;
                    }
                    break;
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => {
                    self.metrics.io_errors.inc();
                    return false;
                }
            }
        }
        if c.wstart == c.wbuf.len() {
            c.wbuf.clear();
            c.wstart = 0;
            c.stalled_since = None;
        } else if c.wstart > 32 * 1024 {
            c.wbuf.drain(..c.wstart);
            c.wstart = 0;
        }
        true
    }
}
