//! `RpcServer` — acceptor thread + bounded connection-handler pool
//! bridging decoded wire requests into the `serve` micro-batcher.
//!
//! The acceptor owns the listening socket. On accept it decides admission
//! *first* — a queue-depth counter mirrors the bounded connection queue —
//! and only then writes the [`proto::encode_server_hello`]: an admitted
//! client gets [`proto::HELLO_OK`] immediately (so it never blocks waiting
//! for a handler slot just to finish its handshake), while a connection
//! over the cap is greeted with [`proto::HELLO_BUSY`] and closed. The busy
//! hello is the back-off signal ([`crate::RpcError::Busy`] client-side);
//! the load generator retries it with capped exponential backoff.
//!
//! Handlers are a fixed pool of threads, each serving one connection for
//! that connection's lifetime: read a CRC-checked frame header, read the
//! payload, submit the sample to the shared [`serve::Client`] (propagating
//! the wire deadline budget into [`serve::Client::infer_with_deadline`]),
//! and write the typed response — the reply bytes are encoded straight out
//! of the batcher's pooled [`serve::OutputBuf`], no intermediate copy. All
//! socket reads carry a short timeout so an idle connection re-checks the
//! stop flag every tick; that bound is what makes drain prompt.
//!
//! **Drain state machine** (see DESIGN.md): `serving` → (`shutdown()` or a
//! client's [`proto::REQ_DRAIN`] observed by the owner) → `draining`: the
//! acceptor stops accepting and is joined, the connection queue closes,
//! each handler finishes the frame in flight, sends [`proto::RESP_SHUTDOWN`]
//! on its connection — including connections still queued, which get a
//! hello-then-shutdown goodbye — and exits; `shutdown()` returns once every
//! thread is joined. A client blocked in `read` therefore sees a shutdown
//! frame (or a clean FIN) within roughly one read-timeout tick plus the
//! time to answer the in-flight frame; a reader that never drains its
//! socket cannot wedge the drain because every write carries a timeout.
//!
//! Decode errors never panic and never take down the server: a bad hello
//! or corrupt header poisons only its own connection (error frame, then
//! close — resynchronising a byte stream after a bad length prefix is not
//! possible), while an intact header with an unexpected kind or payload
//! length is answered with [`proto::RESP_ERROR`] and the connection lives
//! on. Every rejection bumps `rpc.decode_errors`.

use crate::proto::{self, DecodeError};
use std::io::{self, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicUsize, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError, SyncSender, TrySendError};
use std::sync::{Arc, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Tuning knobs for the wire front-end.
#[derive(Debug, Clone)]
pub struct RpcConfig {
    /// Handler threads — the maximum number of concurrently served
    /// connections.
    pub handlers: usize,
    /// Accepted connections allowed to queue for a free handler; one more
    /// is greeted with [`proto::HELLO_BUSY`] and closed.
    pub backlog: usize,
    /// Per-read socket timeout. Idle handlers re-check the stop flag at
    /// this cadence, so it also bounds drain latency.
    pub read_timeout: Duration,
    /// Per-write socket timeout; a reader that never drains its socket
    /// costs at most this long, then its connection is dropped.
    pub write_timeout: Duration,
    /// Per-frame payload cap; headers announcing more are decode errors.
    pub max_payload: u32,
}

impl Default for RpcConfig {
    /// 8 handlers over a 16-deep accept queue; 100 ms reads, 1 s writes.
    fn default() -> Self {
        Self {
            handlers: 8,
            backlog: 16,
            read_timeout: Duration::from_millis(100),
            write_timeout: Duration::from_secs(1),
            max_payload: proto::MAX_PAYLOAD,
        }
    }
}

/// Cached `rpc.*` registry handles; every update is a few atomics.
pub struct RpcMetrics {
    /// Connections accepted (including busy-rejected ones).
    pub connections: obs::Counter,
    /// Connections refused with [`proto::HELLO_BUSY`].
    pub rejected_connections: obs::Counter,
    /// Currently served connections (gauge `rpc.active_connections`).
    pub active_connections: obs::Gauge,
    /// Request frames with a valid header.
    pub frames_in: obs::Counter,
    /// Response frames written.
    pub frames_out: obs::Counter,
    /// Bytes read off the wire.
    pub bytes_in: obs::Counter,
    /// Bytes written to the wire.
    pub bytes_out: obs::Counter,
    /// Malformed hellos/headers/payloads rejected (see [`DecodeError`]).
    pub decode_errors: obs::Counter,
    /// Socket-level read/write failures (timeouts, resets).
    pub io_errors: obs::Counter,
    /// Infer requests answered with probabilities.
    pub completed: obs::Counter,
    /// Infer requests answered with [`proto::RESP_REJECTED`].
    pub rejected: obs::Counter,
    /// Infer requests answered with [`proto::RESP_TIMED_OUT`].
    pub timed_out: obs::Counter,
    /// Handler panics survived (the thread returns to the pool).
    pub handler_panics: obs::Counter,
    /// Decode-to-response latency of answered infer frames.
    pub frame_seconds: obs::Histogram,
    active: AtomicI64,
}

impl RpcMetrics {
    /// Resolve the `rpc.*` handles in `reg` (usually
    /// [`obs::registry::global`]; tests pass their own registry).
    pub fn register(reg: &obs::Registry) -> Arc<Self> {
        Arc::new(Self {
            connections: reg.counter("rpc.connections"),
            rejected_connections: reg.counter("rpc.rejected_connections"),
            active_connections: reg.gauge("rpc.active_connections"),
            frames_in: reg.counter("rpc.frames_in"),
            frames_out: reg.counter("rpc.frames_out"),
            bytes_in: reg.counter("rpc.bytes_in"),
            bytes_out: reg.counter("rpc.bytes_out"),
            decode_errors: reg.counter("rpc.decode_errors"),
            io_errors: reg.counter("rpc.io_errors"),
            completed: reg.counter("rpc.completed"),
            rejected: reg.counter("rpc.rejected"),
            timed_out: reg.counter("rpc.timed_out"),
            handler_panics: reg.counter("rpc.handler_panics"),
            frame_seconds: reg.histogram("rpc.frame_seconds", &obs::registry::DURATION_BOUNDS_SECS),
            active: AtomicI64::new(0),
        })
    }

    fn conn_opened(&self) {
        let n = self.active.fetch_add(1, Ordering::SeqCst) + 1;
        self.active_connections.set(n as f64);
    }

    fn conn_closed(&self) {
        let n = self.active.fetch_sub(1, Ordering::SeqCst) - 1;
        self.active_connections.set(n as f64);
    }
}

/// Everything a handler thread needs; one clone per thread.
#[derive(Clone)]
struct HandlerCtx {
    rx: Arc<Mutex<Receiver<TcpStream>>>,
    bridge: serve::Client<f32>,
    stop: Arc<AtomicBool>,
    drain: Arc<AtomicBool>,
    metrics: Arc<RpcMetrics>,
    cfg: RpcConfig,
    sample_len: usize,
    /// Mirrors the connection queue's occupancy (incremented by the
    /// acceptor before enqueue, decremented here on dequeue) so the
    /// acceptor can refuse with [`proto::HELLO_BUSY`] *before* writing an
    /// OK hello it cannot take back.
    queue_depth: Arc<AtomicUsize>,
}

/// The running wire front-end. Dropping it signals the threads to stop;
/// [`RpcServer::shutdown`] performs the graceful drain and joins them.
pub struct RpcServer {
    local_addr: SocketAddr,
    stop: Arc<AtomicBool>,
    drain: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<()>>,
    handlers: Vec<JoinHandle<()>>,
    metrics: Arc<RpcMetrics>,
}

impl RpcServer {
    /// Bind `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and start
    /// serving `bridge`. `output_len` is what the server hello advertises
    /// (take it from [`serve::Server::output_len`]); `reg` receives the
    /// `rpc.*` metrics.
    pub fn start(
        addr: impl ToSocketAddrs,
        bridge: serve::Client<f32>,
        output_len: usize,
        cfg: RpcConfig,
        reg: &obs::Registry,
    ) -> io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let drain = Arc::new(AtomicBool::new(false));
        let metrics = RpcMetrics::register(reg);
        let capacity = cfg.backlog.max(1);
        let (tx, rx) = std::sync::mpsc::sync_channel::<TcpStream>(capacity);
        let queue_depth = Arc::new(AtomicUsize::new(0));
        let ctx = HandlerCtx {
            rx: Arc::new(Mutex::new(rx)),
            sample_len: bridge.sample_len(),
            bridge,
            stop: Arc::clone(&stop),
            drain: Arc::clone(&drain),
            metrics: Arc::clone(&metrics),
            cfg: cfg.clone(),
            queue_depth: Arc::clone(&queue_depth),
        };
        let mut handlers = Vec::with_capacity(cfg.handlers.max(1));
        let spawn_result = (|| -> io::Result<JoinHandle<()>> {
            for i in 0..cfg.handlers.max(1) {
                let ctx = ctx.clone();
                handlers.push(
                    std::thread::Builder::new()
                        .name(format!("rpc-handler-{i}"))
                        .spawn(move || handler_main(ctx))?,
                );
            }
            let actx = AcceptorCtx {
                tx,
                stop: Arc::clone(&stop),
                metrics: Arc::clone(&metrics),
                hello_ok: proto::encode_server_hello(
                    proto::HELLO_OK,
                    ctx.sample_len as u32,
                    output_len as u32,
                ),
                hello_busy: proto::encode_server_hello(
                    proto::HELLO_BUSY,
                    ctx.sample_len as u32,
                    output_len as u32,
                ),
                write_timeout: cfg.write_timeout,
                queue_depth,
                capacity,
            };
            std::thread::Builder::new()
                .name("rpc-acceptor".into())
                .spawn(move || acceptor_loop(listener, actx))
        })();
        match spawn_result {
            Ok(acceptor) => Ok(Self {
                local_addr,
                stop,
                drain,
                acceptor: Some(acceptor),
                handlers,
                metrics,
            }),
            Err(e) => {
                stop.store(true, Ordering::SeqCst);
                for h in handlers {
                    let _ = h.join();
                }
                Err(e)
            }
        }
    }

    /// The bound address (resolves `:0` to the ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Whether some client sent [`proto::REQ_DRAIN`]. The owner polls this
    /// and calls [`RpcServer::shutdown`] — the drain frame requests, it
    /// does not force.
    pub fn drain_requested(&self) -> bool {
        self.drain.load(Ordering::SeqCst)
    }

    /// The `rpc.*` metrics handles.
    pub fn metrics(&self) -> Arc<RpcMetrics> {
        Arc::clone(&self.metrics)
    }

    /// Graceful drain: stop accepting, answer in-flight frames, send
    /// [`proto::RESP_SHUTDOWN`] on every live connection, close, and join
    /// every thread. Bounded by the read/write timeouts plus the in-flight
    /// work — a stalled peer cannot wedge it.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(a) = self.acceptor.take() {
            let _ = a.join();
        }
        // The acceptor's exit dropped the queue sender: handlers drain the
        // remaining queued connections (hello already sent; they get the
        // shutdown frame) and exit on disconnect.
        for h in self.handlers.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for RpcServer {
    fn drop(&mut self) {
        // Belt and suspenders for the no-shutdown path: signal the threads
        // so they exit within a poll tick; joining is shutdown()'s job.
        self.stop.store(true, Ordering::SeqCst);
    }
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|p| p.into_inner())
}

/// What the acceptor thread owns besides the listening socket.
struct AcceptorCtx {
    tx: SyncSender<TcpStream>,
    stop: Arc<AtomicBool>,
    metrics: Arc<RpcMetrics>,
    hello_ok: [u8; proto::SERVER_HELLO_LEN],
    hello_busy: [u8; proto::SERVER_HELLO_LEN],
    write_timeout: Duration,
    queue_depth: Arc<AtomicUsize>,
    capacity: usize,
}

fn acceptor_loop(listener: TcpListener, a: AcceptorCtx) {
    const ACCEPT_POLL: Duration = Duration::from_millis(10);
    loop {
        if a.stop.load(Ordering::SeqCst) {
            return;
        }
        match listener.accept() {
            Ok((mut stream, _)) => {
                a.metrics.connections.inc();
                let _ = stream.set_nonblocking(false);
                let _ = stream.set_write_timeout(Some(a.write_timeout));
                // Admission is decided before any hello goes out, so the
                // hello itself can carry the verdict: over the cap means
                // HELLO_BUSY and close, and the client backs off and
                // retries instead of discovering a dead connection one
                // frame later. Reserving the seat with fetch_add keeps the
                // counter at or above the queue's true occupancy, so an
                // admitted stream can never find the channel full.
                let seat = a.queue_depth.fetch_add(1, Ordering::SeqCst);
                if seat >= a.capacity {
                    a.queue_depth.fetch_sub(1, Ordering::SeqCst);
                    a.metrics.rejected_connections.inc();
                    let _ = stream.write_all(&a.hello_busy);
                    let _ = stream.shutdown(Shutdown::Both);
                    continue;
                }
                // The OK hello goes out here, not in the handler, so a
                // client finishes its handshake even while every handler
                // is busy.
                if stream.write_all(&a.hello_ok).is_err() {
                    a.queue_depth.fetch_sub(1, Ordering::SeqCst);
                    a.metrics.io_errors.inc();
                    continue;
                }
                a.metrics.bytes_out.add(a.hello_ok.len() as u64);
                match a.tx.try_send(stream) {
                    Ok(()) => {}
                    Err(TrySendError::Full(stream)) => {
                        // Unreachable while the depth counter mirrors the
                        // queue; kept as a defensive fallback. The OK hello
                        // already went out, so the goodbye is a shutdown
                        // frame rather than a busy hello.
                        a.queue_depth.fetch_sub(1, Ordering::SeqCst);
                        a.metrics.rejected_connections.inc();
                        busy_goodbye(stream);
                    }
                    Err(TrySendError::Disconnected(_)) => return,
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => std::thread::sleep(ACCEPT_POLL),
            // Transient accept failures (EMFILE, aborted connections):
            // back off and keep listening.
            Err(_) => std::thread::sleep(ACCEPT_POLL),
        }
    }
}

/// Fallback goodbye for a stream that was admitted (OK hello sent) but
/// then found the queue full: a shutdown frame, then close.
fn busy_goodbye(mut stream: TcpStream) {
    let _ = stream.write_all(&proto::encode_header(proto::RESP_SHUTDOWN, 0, 0, 0));
    let _ = stream.shutdown(Shutdown::Both);
}

fn handler_main(ctx: HandlerCtx) {
    const CONN_POLL: Duration = Duration::from_millis(50);
    loop {
        let next = lock(&ctx.rx).recv_timeout(CONN_POLL);
        match next {
            Ok(stream) => {
                // The stream now occupies a handler, not the queue; free
                // its seat so the acceptor can admit the next connection.
                ctx.queue_depth.fetch_sub(1, Ordering::SeqCst);
                ctx.metrics.conn_opened();
                let r = std::panic::catch_unwind(AssertUnwindSafe(|| handle_conn(stream, &ctx)));
                ctx.metrics.conn_closed();
                if r.is_err() {
                    // A panic poisons only its own connection; the thread
                    // returns to the pool for the next one.
                    ctx.metrics.handler_panics.inc();
                }
            }
            Err(RecvTimeoutError::Timeout) => {
                if ctx.stop.load(Ordering::SeqCst) {
                    return;
                }
            }
            Err(RecvTimeoutError::Disconnected) => return,
        }
    }
}

/// What an interruptible full-buffer read observed.
enum ReadOutcome {
    /// Buffer filled.
    Done,
    /// Peer closed; `partial` when it hung up mid-buffer.
    Eof { partial: bool },
    /// The stop flag was raised while waiting.
    Stopped,
}

/// Fill `buf` from `stream`, re-checking `stop` on every read-timeout tick
/// so a drain interrupts an idle read instead of waiting for the peer.
fn read_full(stream: &mut TcpStream, buf: &mut [u8], stop: &AtomicBool) -> io::Result<ReadOutcome> {
    let mut filled = 0;
    while filled < buf.len() {
        match stream.read(&mut buf[filled..]) {
            Ok(0) => {
                return Ok(ReadOutcome::Eof {
                    partial: filled > 0,
                })
            }
            Ok(n) => filled += n,
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                if stop.load(Ordering::SeqCst) {
                    return Ok(ReadOutcome::Stopped);
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(ReadOutcome::Done)
}

fn send_frame(
    stream: &mut TcpStream,
    kind: u8,
    id: u64,
    payload: &[u8],
    m: &RpcMetrics,
) -> io::Result<()> {
    let head = proto::encode_header(kind, id, 0, payload.len() as u32);
    stream.write_all(&head)?;
    stream.write_all(payload)?;
    m.frames_out.inc();
    m.bytes_out.add((head.len() + payload.len()) as u64);
    Ok(())
}

/// Best-effort shutdown frame; the connection is closing either way.
fn send_shutdown(stream: &mut TcpStream, m: &RpcMetrics) {
    let _ = send_frame(stream, proto::RESP_SHUTDOWN, 0, &[], m);
}

/// Serve one connection until EOF, a fatal decode error, or drain.
fn handle_conn(mut stream: TcpStream, ctx: &HandlerCtx) {
    let m = &ctx.metrics;
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(ctx.cfg.read_timeout));
    let _ = stream.set_write_timeout(Some(ctx.cfg.write_timeout));
    let _conn_span = obs::trace::span("conn", "rpc");

    // The acceptor already sent our hello; the client's comes first.
    let mut hb = [0u8; proto::CLIENT_HELLO_LEN];
    match read_full(&mut stream, &mut hb, &ctx.stop) {
        Ok(ReadOutcome::Done) => m.bytes_in.add(hb.len() as u64),
        Ok(ReadOutcome::Eof { partial }) => {
            if partial {
                m.decode_errors.inc();
            }
            return;
        }
        Ok(ReadOutcome::Stopped) => return send_shutdown(&mut stream, m),
        Err(_) => return m.io_errors.inc(),
    }
    if let Err(e) = proto::decode_client_hello(&hb) {
        m.decode_errors.inc();
        let _ = send_frame(
            &mut stream,
            proto::RESP_ERROR,
            0,
            e.to_string().as_bytes(),
            m,
        );
        return;
    }

    let expected_payload = ctx.sample_len * std::mem::size_of::<f32>();
    let mut payload = Vec::new();
    let mut reply = Vec::new();
    loop {
        if ctx.stop.load(Ordering::SeqCst) {
            return send_shutdown(&mut stream, m);
        }
        let mut head = [0u8; proto::FRAME_HEADER_LEN];
        match read_full(&mut stream, &mut head, &ctx.stop) {
            Ok(ReadOutcome::Done) => m.bytes_in.add(head.len() as u64),
            Ok(ReadOutcome::Eof { partial }) => {
                // EOF on a frame boundary is the normal goodbye; EOF inside
                // a header is a mid-frame disconnect.
                if partial {
                    m.decode_errors.inc();
                }
                return;
            }
            Ok(ReadOutcome::Stopped) => return send_shutdown(&mut stream, m),
            Err(_) => return m.io_errors.inc(),
        }
        let header = match proto::decode_header(&head) {
            Ok(h) => h,
            Err(e) => {
                // A corrupt header leaves no trustworthy payload_len to
                // resynchronise on; explain and close.
                m.decode_errors.inc();
                let _ = send_frame(
                    &mut stream,
                    proto::RESP_ERROR,
                    0,
                    e.to_string().as_bytes(),
                    m,
                );
                return;
            }
        };
        if header.payload_len > ctx.cfg.max_payload {
            // Reject before allocating a byte of it.
            m.decode_errors.inc();
            let e = DecodeError::Oversize {
                len: header.payload_len,
                max: ctx.cfg.max_payload,
            };
            let _ = send_frame(
                &mut stream,
                proto::RESP_ERROR,
                header.id,
                e.to_string().as_bytes(),
                m,
            );
            return;
        }
        m.frames_in.inc();
        let _frame_span = obs::trace::span("frame", "rpc");
        let t0 = Instant::now();
        // The header CRC held, so the framing is trustworthy: consume the
        // payload even for kinds/lengths we then refuse, keeping the
        // connection usable.
        payload.clear();
        payload.resize(header.payload_len as usize, 0);
        match read_full(&mut stream, &mut payload, &ctx.stop) {
            Ok(ReadOutcome::Done) => m.bytes_in.add(payload.len() as u64),
            Ok(ReadOutcome::Eof { .. }) => {
                m.decode_errors.inc(); // truncated payload
                return;
            }
            Ok(ReadOutcome::Stopped) => return send_shutdown(&mut stream, m),
            Err(_) => return m.io_errors.inc(),
        }
        let sent = match header.kind {
            proto::REQ_DRAIN => {
                // Surface the request to the owner (who decides to stop);
                // acknowledge so the drainer can hang up immediately.
                ctx.drain.store(true, Ordering::SeqCst);
                send_frame(&mut stream, proto::RESP_SHUTDOWN, header.id, &[], m)
            }
            proto::REQ_INFER if payload.len() != expected_payload => {
                m.decode_errors.inc();
                let msg = format!(
                    "infer payload is {} bytes, sample shape needs {expected_payload}",
                    payload.len()
                );
                send_frame(&mut stream, proto::RESP_ERROR, header.id, msg.as_bytes(), m)
            }
            proto::REQ_INFER => {
                let sample = proto::read_f32s(&payload).expect("length checked above");
                let result = if header.aux > 0 {
                    ctx.bridge.infer_with_deadline(
                        &sample,
                        Instant::now() + Duration::from_micros(u64::from(header.aux)),
                    )
                } else {
                    ctx.bridge.infer(&sample)
                };
                match result {
                    Ok(out) => {
                        // Encode straight from the batcher's pooled buffer.
                        reply.clear();
                        proto::write_f32s(&mut reply, &out);
                        m.completed.inc();
                        send_frame(&mut stream, proto::RESP_PROBS, header.id, &reply, m)
                    }
                    Err(serve::ServeError::Rejected) => {
                        m.rejected.inc();
                        send_frame(&mut stream, proto::RESP_REJECTED, header.id, &[], m)
                    }
                    Err(serve::ServeError::TimedOut) => {
                        m.timed_out.inc();
                        send_frame(&mut stream, proto::RESP_TIMED_OUT, header.id, &[], m)
                    }
                    Err(serve::ServeError::Closed) => {
                        let _ = send_frame(&mut stream, proto::RESP_SHUTDOWN, header.id, &[], m);
                        return;
                    }
                    Err(e) => send_frame(
                        &mut stream,
                        proto::RESP_ERROR,
                        header.id,
                        e.to_string().as_bytes(),
                        m,
                    ),
                }
            }
            k => {
                m.decode_errors.inc();
                let msg = format!("unknown request kind {k}");
                send_frame(&mut stream, proto::RESP_ERROR, header.id, msg.as_bytes(), m)
            }
        };
        m.frame_seconds.observe(t0.elapsed().as_secs_f64());
        if sent.is_err() {
            // The peer stalled past the write timeout or went away.
            m.io_errors.inc();
            return;
        }
    }
}
