//! The `CGRP` wire protocol: versioned handshake and CRC-protected,
//! length-prefixed binary frames.
//!
//! Everything on the wire is little-endian and fixed-layout, so both ends
//! can encode/decode with no allocation beyond the payload itself.
//!
//! **Handshake** — the server speaks first, so a client learns the sample
//! and output shapes (and whether the server is full or draining) before
//! it sends a byte:
//!
//! ```text
//! ServerHello (16 bytes): magic "CGRP" | version u16 | status u8 | pad u8
//!                         | sample_len u32 | output_len u32
//! ClientHello ( 8 bytes): magic "CGRP" | version u16 | pad u16
//! ```
//!
//! **Frames** — one 24-byte header, then `payload_len` bytes of payload:
//!
//! ```text
//! FrameHeader (24 bytes): kind u8 | pad [u8;3] | id u64 | aux u32
//!                         | payload_len u32 | crc u32
//! ```
//!
//! `aux` carries the request's deadline budget in microseconds (0 = no
//! deadline). In responses `aux` is the sample index for
//! [`REQ_INFER_STREAM`] answers and 0 otherwise. `crc` is IEEE CRC-32
//! (the snapshot format's [`net::snapshot::crc32`]) over the first 20
//! header bytes, so a corrupted or misaligned header is detected before
//! `payload_len` is trusted. Request payloads are `f32` little-endian
//! samples; [`RESP_PROBS`] payloads are `f32` outputs; [`RESP_ERROR`]
//! payloads are UTF-8 diagnostics.
//!
//! **Pipelining** — the `id` field exists so a connection can have many
//! requests in flight at once. The contract:
//!
//! - a client must keep `id` unique among its own in-flight requests on
//!   one connection (monotonically increasing is the easy way);
//! - the server echoes the request's `id` on every response frame, and
//!   may deliver responses in **any order** — completion order is the
//!   micro-batcher's business, not the socket's;
//! - a [`REQ_INFER_STREAM`] request with K samples produces exactly K
//!   responses, all carrying the request's `id`, distinguished by the
//!   sample index in `aux`; they interleave freely with responses to
//!   other ids.
//!
//! The only ordering guarantee is per-request: each request gets its
//! response(s) exactly once. Clients that need FIFO behavior simply keep
//! one request in flight.

use std::fmt;

/// Protocol magic, first bytes of both hello messages.
pub const MAGIC: [u8; 4] = *b"CGRP";
/// Protocol version spoken by this build.
pub const VERSION: u16 = 1;
/// Size of the server's hello (sent first, on accept).
pub const SERVER_HELLO_LEN: usize = 16;
/// Size of the client's hello reply.
pub const CLIENT_HELLO_LEN: usize = 8;
/// Size of every frame header.
pub const FRAME_HEADER_LEN: usize = 24;
/// Default cap on a single frame's payload; a header announcing more is a
/// decode error, rejected *before* any allocation.
pub const MAX_PAYLOAD: u32 = 1 << 20;

/// ServerHello status: accepting requests.
pub const HELLO_OK: u8 = 0;
/// ServerHello status: connection limit reached; the server closes after
/// this hello and the client should back off and retry.
pub const HELLO_BUSY: u8 = 1;
/// ServerHello status: the server is draining; no requests will be served.
pub const HELLO_DRAINING: u8 = 2;

/// Request frame: one `f32` sample, answered by exactly one response.
pub const REQ_INFER: u8 = 1;
/// Request frame: ask the server to drain and shut down. Acknowledged with
/// [`RESP_SHUTDOWN`].
pub const REQ_DRAIN: u8 = 2;
/// Request frame: K `f32` samples back to back in one payload
/// (`payload_len = K * sample_len * 4`, K ≥ 1). Answered by exactly K
/// responses sharing this frame's `id`, each response's `aux` holding
/// the zero-based sample index. `aux` on the request is the per-sample
/// deadline budget in microseconds, as for [`REQ_INFER`].
pub const REQ_INFER_STREAM: u8 = 3;

/// Response frame: softmax outputs (`f32` payload).
pub const RESP_PROBS: u8 = 1;
/// Response frame: admission queue full — back off and retry.
pub const RESP_REJECTED: u8 = 2;
/// Response frame: the request's deadline budget expired in the queue.
pub const RESP_TIMED_OUT: u8 = 3;
/// Response frame: the server is shutting down (also the [`REQ_DRAIN`]
/// acknowledgement). No further responses follow on this connection.
pub const RESP_SHUTDOWN: u8 = 4;
/// Response frame: typed failure; the payload is a UTF-8 message.
pub const RESP_ERROR: u8 = 5;

// --- Distributed-training frame kinds (crates/dist) -------------------
//
// Same 24-byte header, same CRC. Large tensors (gradients, parameters)
// are *chunked*: `id` carries the step number, `aux` packs
// `(chunk_idx << 16) | n_chunks` (see [`encode_chunk_aux`]) and each
// chunk payload is at most [`MAX_CHUNK_F32S`] `f32` values — comfortably
// under [`MAX_PAYLOAD`].

/// Worker → coordinator: join the training group. `aux` = worker rank.
pub const FRAME_JOIN: u8 = 16;
/// Coordinator → worker: admission. Payload: world `u32` | effective
/// batch `u32` | total iterations `u32` (little-endian).
pub const FRAME_WELCOME: u8 = 17;
/// Worker → coordinator: one chunk of the flattened local gradient for
/// step `id`. Chunked `f32` payload.
pub const FRAME_GRAD: u8 = 18;
/// Worker → coordinator: the local loss for step `id` (4-byte `f32`
/// payload). Doubles as the worker's step-done marker.
pub const FRAME_LOSS: u8 = 19;
/// Coordinator → worker: one chunk of the flattened updated parameters
/// for step `id`. Chunked `f32` payload.
pub const FRAME_PARAMS: u8 = 20;
/// Coordinator → worker: barrier release — compute step `id` now.
pub const FRAME_STEP: u8 = 21;
/// Either direction: the run is over. `aux` 0 = clean finish, 1 = error;
/// payload is an optional UTF-8 reason.
pub const FRAME_DONE: u8 = 22;
/// Worker → coordinator: a restarted worker asks to resume its rank.
/// `aux` = worker rank. The coordinator acks with another `FRAME_REJOIN`
/// whose `id` is the resume step and whose payload is the same 12-byte
/// shape block as `FRAME_WELCOME`, so the worker can re-derive its local
/// batch and re-seat its data cursor at `resume_step * local_batch`.
pub const FRAME_REJOIN: u8 = 23;
/// Either direction: a registry-snapshot exchange. As a request (client →
/// server, `aux` 0, empty payload) it asks the serving process for a
/// read-only [`obs`] registry snapshot; the response frames carry the
/// snapshot's binary form (`obs::Snapshot::to_bytes`), chunked like a
/// tensor with [`encode_chunk_aux`]. Worker → coordinator at teardown, the
/// same chunked payload carries the worker's registry *delta* for
/// cross-rank aggregation.
pub const FRAME_STATS: u8 = 24;
/// Worker → coordinator at teardown: the worker's trace events (already
/// shifted onto the coordinator clock), serialized and chunked like
/// `FRAME_STATS`, for the coordinator's single merged Chrome trace.
pub const FRAME_TRACE: u8 = 25;

/// Maximum `f32` values per gradient/parameter chunk (256 KiB payload).
pub const MAX_CHUNK_F32S: usize = 65_536;

/// Pack a chunk position into a frame's `aux` field.
///
/// # Panics
/// Panics if either value exceeds `u16::MAX` (a tensor needing more than
/// 65 535 chunks of 256 KiB would be > 16 GiB — far past any net here).
pub fn encode_chunk_aux(chunk_idx: usize, n_chunks: usize) -> u32 {
    assert!(chunk_idx <= u16::MAX as usize && n_chunks <= u16::MAX as usize);
    ((chunk_idx as u32) << 16) | (n_chunks as u32)
}

/// Unpack a chunk `aux` field into `(chunk_idx, n_chunks)`.
pub fn decode_chunk_aux(aux: u32) -> (usize, usize) {
    ((aux >> 16) as usize, (aux & 0xFFFF) as usize)
}

/// Why a received byte sequence was rejected. Every variant maps to a
/// `rpc.decode_errors` metric bump on the server.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// Hello did not start with [`MAGIC`].
    BadMagic([u8; 4]),
    /// Hello spoke an unsupported protocol version.
    BadVersion(u16),
    /// Frame-header CRC mismatch: the header bytes are corrupt (or the
    /// stream is misaligned), so `payload_len` cannot be trusted.
    BadCrc { stored: u32, computed: u32 },
    /// Header announced a payload larger than the negotiated cap.
    Oversize { len: u32, max: u32 },
    /// The peer disconnected mid-hello, mid-header, or mid-payload.
    Truncated(&'static str),
    /// Payload bytes are not a whole number of `f32` values.
    BadPayload(&'static str),
    /// A chunked tensor frame arrived out of order.
    BadChunk { expected: usize, got: usize },
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::BadMagic(m) => write!(f, "bad magic {m:02x?} (expected \"CGRP\")"),
            DecodeError::BadVersion(v) => {
                write!(
                    f,
                    "unsupported protocol version {v} (this end speaks {VERSION})"
                )
            }
            DecodeError::BadCrc { stored, computed } => write!(
                f,
                "frame header crc mismatch: stored {stored:#010x}, computed {computed:#010x}"
            ),
            DecodeError::Oversize { len, max } => {
                write!(f, "payload length {len} exceeds the {max}-byte cap")
            }
            DecodeError::Truncated(what) => write!(f, "stream truncated mid-{what}"),
            DecodeError::BadPayload(m) => write!(f, "bad payload: {m}"),
            DecodeError::BadChunk { expected, got } => {
                write!(
                    f,
                    "out-of-order chunk: expected index {expected}, got {got}"
                )
            }
        }
    }
}

impl std::error::Error for DecodeError {}

/// Decoded server hello.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServerHello {
    /// One of [`HELLO_OK`] / [`HELLO_BUSY`] / [`HELLO_DRAINING`].
    pub status: u8,
    /// Values per request sample.
    pub sample_len: u32,
    /// Values per [`RESP_PROBS`] payload.
    pub output_len: u32,
}

/// Encode the server's opening message.
pub fn encode_server_hello(status: u8, sample_len: u32, output_len: u32) -> [u8; SERVER_HELLO_LEN] {
    let mut b = [0u8; SERVER_HELLO_LEN];
    b[0..4].copy_from_slice(&MAGIC);
    b[4..6].copy_from_slice(&VERSION.to_le_bytes());
    b[6] = status;
    b[8..12].copy_from_slice(&sample_len.to_le_bytes());
    b[12..16].copy_from_slice(&output_len.to_le_bytes());
    b
}

/// Decode and validate a server hello.
pub fn decode_server_hello(b: &[u8; SERVER_HELLO_LEN]) -> Result<ServerHello, DecodeError> {
    if b[0..4] != MAGIC {
        return Err(DecodeError::BadMagic([b[0], b[1], b[2], b[3]]));
    }
    let version = u16::from_le_bytes([b[4], b[5]]);
    if version != VERSION {
        return Err(DecodeError::BadVersion(version));
    }
    Ok(ServerHello {
        status: b[6],
        sample_len: u32::from_le_bytes(b[8..12].try_into().unwrap()),
        output_len: u32::from_le_bytes(b[12..16].try_into().unwrap()),
    })
}

/// Encode the client's hello reply.
pub fn encode_client_hello() -> [u8; CLIENT_HELLO_LEN] {
    let mut b = [0u8; CLIENT_HELLO_LEN];
    b[0..4].copy_from_slice(&MAGIC);
    b[4..6].copy_from_slice(&VERSION.to_le_bytes());
    b
}

/// Decode and validate a client hello.
pub fn decode_client_hello(b: &[u8; CLIENT_HELLO_LEN]) -> Result<(), DecodeError> {
    if b[0..4] != MAGIC {
        return Err(DecodeError::BadMagic([b[0], b[1], b[2], b[3]]));
    }
    let version = u16::from_le_bytes([b[4], b[5]]);
    if version != VERSION {
        return Err(DecodeError::BadVersion(version));
    }
    Ok(())
}

/// Decoded frame header. `kind` is direction-dependent (`REQ_*` on the
/// way in, `RESP_*` on the way out); unknown kinds are the *receiver's*
/// business, since an intact CRC proves the framing can be trusted to skip
/// the payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameHeader {
    /// Frame kind (`REQ_*` / `RESP_*`).
    pub kind: u8,
    /// Request id; echoed verbatim in the response.
    pub id: u64,
    /// Requests: deadline budget in µs (0 = none). Responses: the
    /// sample index for [`REQ_INFER_STREAM`] answers, 0 otherwise.
    pub aux: u32,
    /// Payload bytes following this header.
    pub payload_len: u32,
}

/// Encode a frame header, computing the CRC over the first 20 bytes.
pub fn encode_header(kind: u8, id: u64, aux: u32, payload_len: u32) -> [u8; FRAME_HEADER_LEN] {
    let mut b = [0u8; FRAME_HEADER_LEN];
    b[0] = kind;
    b[4..12].copy_from_slice(&id.to_le_bytes());
    b[12..16].copy_from_slice(&aux.to_le_bytes());
    b[16..20].copy_from_slice(&payload_len.to_le_bytes());
    let crc = net::snapshot::crc32(&b[0..20]);
    b[20..24].copy_from_slice(&crc.to_le_bytes());
    b
}

/// Decode a frame header, verifying its CRC. The payload-length cap is the
/// caller's to enforce (it is configurable server-side).
pub fn decode_header(b: &[u8; FRAME_HEADER_LEN]) -> Result<FrameHeader, DecodeError> {
    let stored = u32::from_le_bytes(b[20..24].try_into().unwrap());
    let computed = net::snapshot::crc32(&b[0..20]);
    if stored != computed {
        return Err(DecodeError::BadCrc { stored, computed });
    }
    Ok(FrameHeader {
        kind: b[0],
        id: u64::from_le_bytes(b[4..12].try_into().unwrap()),
        aux: u32::from_le_bytes(b[12..16].try_into().unwrap()),
        payload_len: u32::from_le_bytes(b[16..20].try_into().unwrap()),
    })
}

/// Append `vals` to `out` as little-endian `f32` bytes.
pub fn write_f32s(out: &mut Vec<u8>, vals: &[f32]) {
    out.reserve(vals.len() * 4);
    for v in vals {
        out.extend_from_slice(&v.to_le_bytes());
    }
}

/// Decode a little-endian `f32` payload.
pub fn read_f32s(bytes: &[u8]) -> Result<Vec<f32>, DecodeError> {
    if !bytes.len().is_multiple_of(4) {
        return Err(DecodeError::BadPayload("length is not a multiple of 4"));
    }
    Ok(bytes
        .chunks_exact(4)
        .map(|c| f32::from_le_bytes(c.try_into().unwrap()))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_round_trips() {
        let b = encode_header(REQ_INFER, 0xDEAD_BEEF_u64, 1500, 96);
        let h = decode_header(&b).unwrap();
        assert_eq!(h.kind, REQ_INFER);
        assert_eq!(h.id, 0xDEAD_BEEF);
        assert_eq!(h.aux, 1500);
        assert_eq!(h.payload_len, 96);
    }

    #[test]
    fn corrupting_any_header_byte_fails_the_crc() {
        let good = encode_header(RESP_PROBS, 7, 0, 12);
        for i in 0..FRAME_HEADER_LEN {
            let mut bad = good;
            bad[i] ^= 0x40;
            assert!(
                matches!(decode_header(&bad), Err(DecodeError::BadCrc { .. })),
                "flip at byte {i} went undetected"
            );
        }
    }

    #[test]
    fn hellos_round_trip_and_reject_bad_magic_and_version() {
        let h = decode_server_hello(&encode_server_hello(HELLO_OK, 784, 10)).unwrap();
        assert_eq!(
            h,
            ServerHello {
                status: HELLO_OK,
                sample_len: 784,
                output_len: 10
            }
        );
        decode_client_hello(&encode_client_hello()).unwrap();

        let mut bad = encode_client_hello();
        bad[0] = b'X';
        assert!(matches!(
            decode_client_hello(&bad),
            Err(DecodeError::BadMagic(_))
        ));
        let mut bad = encode_server_hello(HELLO_OK, 1, 1);
        bad[4..6].copy_from_slice(&999u16.to_le_bytes());
        assert_eq!(decode_server_hello(&bad), Err(DecodeError::BadVersion(999)));
    }

    #[test]
    fn chunk_aux_round_trips() {
        for (idx, n) in [(0usize, 1usize), (3, 7), (65_535, 65_535)] {
            assert_eq!(decode_chunk_aux(encode_chunk_aux(idx, n)), (idx, n));
        }
    }

    #[test]
    #[should_panic]
    fn chunk_aux_rejects_overflow() {
        encode_chunk_aux(65_536, 1);
    }

    #[test]
    fn dist_frame_kinds_are_distinct() {
        let kinds = [
            FRAME_JOIN,
            FRAME_WELCOME,
            FRAME_GRAD,
            FRAME_LOSS,
            FRAME_PARAMS,
            FRAME_STEP,
            FRAME_DONE,
            FRAME_REJOIN,
            FRAME_STATS,
            FRAME_TRACE,
        ];
        for (i, a) in kinds.iter().enumerate() {
            for b in &kinds[i + 1..] {
                assert_ne!(a, b);
            }
            // Disjoint from the serving request/response kinds
            // (RESP_ERROR is the largest of them).
            assert!(*a > RESP_ERROR);
        }
        // Chunk cap stays under the payload cap with headroom.
        assert!((MAX_CHUNK_F32S * 4) as u32 <= MAX_PAYLOAD / 4);
    }

    #[test]
    fn dist_frame_headers_round_trip() {
        let aux = encode_chunk_aux(2, 5);
        let b = encode_header(FRAME_GRAD, 31, aux, (MAX_CHUNK_F32S * 4) as u32);
        let h = decode_header(&b).unwrap();
        assert_eq!(h.kind, FRAME_GRAD);
        assert_eq!(h.id, 31);
        assert_eq!(decode_chunk_aux(h.aux), (2, 5));
    }

    #[test]
    fn f32_payloads_round_trip() {
        let vals = [0.0f32, -1.5, f32::MIN_POSITIVE, 3.25e7];
        let mut bytes = Vec::new();
        write_f32s(&mut bytes, &vals);
        assert_eq!(bytes.len(), 16);
        let back = read_f32s(&bytes).unwrap();
        assert_eq!(
            back.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            vals.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
        assert!(read_f32s(&bytes[..=6]).is_err());
    }
}
