//! Minimal readiness polling over `poll(2)`, plus a cross-thread waker.
//!
//! The event-driven [`crate::server`] needs exactly two primitives that
//! `std` does not expose: "sleep until one of these sockets is ready"
//! and "wake that sleep from another thread". Both are built here from
//! what the platform already links — `poll(2)` via a one-function FFI
//! declaration (libc is always linked by std on unix) and a nonblocking
//! [`UnixStream`] pair whose read end sits in the poll set.
//!
//! [`PollSet`] is deliberately dumb: callers rebuild the fd list every
//! loop iteration (`clear` + `push`) and read results by slot index.
//! That is O(n) per wakeup, which at the thousands-of-connections scale
//! this crate targets costs microseconds — far below the syscall itself —
//! and keeps registration state impossible to get out of sync.

use std::io::{self, Read, Write};
use std::os::unix::io::{AsRawFd, RawFd};
use std::os::unix::net::UnixStream;
use std::sync::Arc;
use std::time::Duration;

// Event bits from <poll.h>; identical across linux and the BSDs.
const POLLIN: i16 = 0x001;
const POLLOUT: i16 = 0x004;
const POLLERR: i16 = 0x008;
const POLLHUP: i16 = 0x010;
const POLLNVAL: i16 = 0x020;

/// `struct pollfd` from `<poll.h>`.
#[repr(C)]
struct PollFd {
    fd: i32,
    events: i16,
    revents: i16,
}

extern "C" {
    fn poll(fds: *mut PollFd, nfds: std::os::raw::c_ulong, timeout: std::os::raw::c_int) -> i32;
}

/// A rebuilt-per-iteration `poll(2)` fd set.
///
/// Usage per loop turn: `clear()`, `push()` every fd of interest
/// (remembering the returned slot), `wait()`, then query
/// `readable(slot)` / `writable(slot)`.
pub struct PollSet {
    fds: Vec<PollFd>,
}

impl PollSet {
    pub fn new() -> Self {
        Self { fds: Vec::new() }
    }

    /// Drop all registered fds; capacity is kept so steady-state
    /// rebuilds allocate nothing.
    pub fn clear(&mut self) {
        self.fds.clear();
    }

    /// Register `fd` for readiness; returns the slot index used to
    /// query results after [`PollSet::wait`].
    pub fn push(&mut self, fd: RawFd, read: bool, write: bool) -> usize {
        let mut events = 0i16;
        if read {
            events |= POLLIN;
        }
        if write {
            events |= POLLOUT;
        }
        self.fds.push(PollFd {
            fd,
            events,
            revents: 0,
        });
        self.fds.len() - 1
    }

    /// Block until at least one registered fd is ready or `timeout`
    /// elapses (`None` = wait forever). Returns the number of ready
    /// fds (0 on timeout). EINTR is retried transparently.
    pub fn wait(&mut self, timeout: Option<Duration>) -> io::Result<usize> {
        let ms: i32 = match timeout {
            None => -1,
            // Round up so a 100µs deadline doesn't become a busy loop
            // of 0ms polls; saturate far-future deadlines.
            Some(d) => d
                .as_millis()
                .saturating_add(u128::from(d.subsec_nanos() % 1_000_000 != 0))
                .min(i32::MAX as u128) as i32,
        };
        loop {
            let n = unsafe { poll(self.fds.as_mut_ptr(), self.fds.len() as _, ms) };
            if n >= 0 {
                return Ok(n as usize);
            }
            let err = io::Error::last_os_error();
            if err.kind() != io::ErrorKind::Interrupted {
                return Err(err);
            }
        }
    }

    /// Did `slot` become readable (or hung up / errored — callers must
    /// attempt the read to observe EOF or the error)?
    pub fn readable(&self, slot: usize) -> bool {
        self.fds[slot].revents & (POLLIN | POLLHUP | POLLERR | POLLNVAL) != 0
    }

    /// Did `slot` become writable (or errored — the write will surface it)?
    pub fn writable(&self, slot: usize) -> bool {
        self.fds[slot].revents & (POLLOUT | POLLERR | POLLHUP | POLLNVAL) != 0
    }
}

impl Default for PollSet {
    fn default() -> Self {
        Self::new()
    }
}

/// Cross-thread wakeup for a [`PollSet`] sleeper.
///
/// The event loop keeps `reader` in its poll set; any thread holding a
/// clone of [`Waker`] can interrupt the sleep. Multiple wakes coalesce
/// into the pipe buffer and are drained in one gulp.
pub struct WakePipe {
    reader: UnixStream,
}

/// The sending half of a [`WakePipe`]; cheap to clone and hand to
/// completion callbacks.
#[derive(Clone)]
pub struct Waker {
    writer: Arc<UnixStream>,
}

impl WakePipe {
    pub fn new() -> io::Result<(Self, Waker)> {
        let (reader, writer) = UnixStream::pair()?;
        reader.set_nonblocking(true)?;
        writer.set_nonblocking(true)?;
        Ok((
            Self { reader },
            Waker {
                writer: Arc::new(writer),
            },
        ))
    }

    pub fn fd(&self) -> RawFd {
        self.reader.as_raw_fd()
    }

    /// Consume all pending wake bytes so the next poll sleeps again.
    pub fn drain(&mut self) {
        let mut buf = [0u8; 64];
        while matches!(self.reader.read(&mut buf), Ok(n) if n > 0) {}
    }
}

impl Waker {
    /// Interrupt the poll sleep. A full pipe means a wake is already
    /// pending, which is all we need — WouldBlock is success here.
    pub fn wake(&self) {
        let _ = (&*self.writer).write(&[1u8]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{TcpListener, TcpStream};
    use std::time::Instant;

    #[test]
    fn socket_becomes_readable_after_peer_writes() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut tx = TcpStream::connect(addr).unwrap();
        let (rx, _) = listener.accept().unwrap();
        rx.set_nonblocking(true).unwrap();

        let mut ps = PollSet::new();
        let slot = ps.push(rx.as_raw_fd(), true, false);
        // Nothing written yet: a short wait times out.
        assert_eq!(ps.wait(Some(Duration::from_millis(10))).unwrap(), 0);
        assert!(!ps.readable(slot));

        tx.write_all(b"ping").unwrap();
        ps.clear();
        let slot = ps.push(rx.as_raw_fd(), true, false);
        assert_eq!(ps.wait(Some(Duration::from_secs(2))).unwrap(), 1);
        assert!(ps.readable(slot));
    }

    #[test]
    fn waker_interrupts_a_blocked_wait() {
        let (mut pipe, waker) = WakePipe::new().unwrap();
        // Keep `waker` alive here: dropping the last clone closes the
        // write end, which reads as a permanent hangup.
        let remote = waker.clone();
        let t = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(50));
            remote.wake();
            remote.wake(); // coalesces
        });
        let mut ps = PollSet::new();
        let slot = ps.push(pipe.fd(), true, false);
        let start = Instant::now();
        // Infinite timeout: only the waker can end this wait.
        assert!(ps.wait(None).unwrap() >= 1);
        assert!(ps.readable(slot));
        assert!(start.elapsed() < Duration::from_secs(5));
        // Both wakes are in the pipe once the thread is done; draining
        // clears them so the next short wait times out, not spins.
        t.join().unwrap();
        pipe.drain();
        ps.clear();
        ps.push(pipe.fd(), true, false);
        assert_eq!(ps.wait(Some(Duration::from_millis(10))).unwrap(), 0);
    }

    #[test]
    fn timeout_expires_without_events() {
        let mut ps = PollSet::new();
        let start = Instant::now();
        assert_eq!(ps.wait(Some(Duration::from_millis(20))).unwrap(), 0);
        assert!(start.elapsed() >= Duration::from_millis(15));
    }
}
