//! Protocol robustness: malformed traffic of every flavour must produce a
//! typed error (and an `rpc.decode_errors` bump) — never a panic, never a
//! wedged server, never collateral damage to well-behaved connections.

use rpc::{proto, RpcClient, RpcConfig, RpcServer};
use serve::{BatchPolicy, EngineConfig, EngineFactory, Server};
use std::io::{Read, Write};
use std::net::{Shutdown, TcpStream};
use std::time::{Duration, Instant};

const TRAIN: &str = r#"
name: t
layer {
  name: d
  type: Data
  batch: 4
  top: data
  top: label
}
layer {
  name: ip
  type: InnerProduct
  num_output: 3
  seed: 5
  bottom: data
  top: ip
}
layer {
  name: loss
  type: SoftmaxWithLoss
  bottom: ip
  bottom: label
  top: prob
}
"#;

/// Micro-batcher + wire front-end on an ephemeral port, with a private
/// metrics registry so counter assertions see only this test's traffic.
fn start_stack() -> (Server<f32>, RpcServer, obs::Registry) {
    let spec = net::NetSpec::parse(TRAIN).unwrap();
    let factory = EngineFactory::<f32>::new(
        &spec,
        &blob::Shape::from(vec![6usize]),
        &EngineConfig {
            max_batch: 4,
            n_threads: 1,
        },
        None,
    )
    .unwrap();
    let server = Server::start(factory.build_n(1).unwrap(), BatchPolicy::default()).unwrap();
    let reg = obs::Registry::new();
    let cfg = RpcConfig {
        read_timeout: Duration::from_millis(25),
        ..RpcConfig::default()
    };
    let rpc = RpcServer::start(
        "127.0.0.1:0",
        server.client(),
        server.output_len(),
        cfg,
        &reg,
    )
    .unwrap();
    (server, rpc, reg)
}

fn wait_for(mut cond: impl FnMut() -> bool, timeout: Duration) -> bool {
    let t0 = Instant::now();
    while t0.elapsed() < timeout {
        if cond() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    cond()
}

/// Raw connection that has consumed the server hello and sent nothing yet.
fn raw_conn(addr: std::net::SocketAddr) -> TcpStream {
    let mut s = TcpStream::connect(addr).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    s.set_write_timeout(Some(Duration::from_secs(5))).unwrap();
    let mut hello = [0u8; proto::SERVER_HELLO_LEN];
    s.read_exact(&mut hello).unwrap();
    proto::decode_server_hello(&hello).unwrap();
    s
}

/// Read one response frame (header + payload) off a raw connection.
fn read_frame(s: &mut TcpStream) -> (u8, u64, Vec<u8>) {
    let mut head = [0u8; proto::FRAME_HEADER_LEN];
    s.read_exact(&mut head).unwrap();
    let h = proto::decode_header(&head).unwrap();
    let mut payload = vec![0u8; h.payload_len as usize];
    s.read_exact(&mut payload).unwrap();
    (h.kind, h.id, payload)
}

#[test]
fn bad_magic_yields_typed_error_and_leaves_server_alive() {
    let (server, rpc, reg) = start_stack();
    let addr = rpc.local_addr();

    let mut s = raw_conn(addr);
    s.write_all(b"GET / HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
    let (kind, id, payload) = read_frame(&mut s);
    assert_eq!(kind, proto::RESP_ERROR);
    assert_eq!(id, 0);
    let msg = String::from_utf8_lossy(&payload).into_owned();
    assert!(msg.contains("magic"), "unexpected message: {msg}");
    // The offending connection is closed. (A reset rather than a FIN is
    // fine: our unread junk was still in the server's receive buffer.)
    let mut sink = [0u8; 16];
    match s.read(&mut sink) {
        Ok(0) => {}
        Ok(n) => panic!("server kept talking: {n} unexpected bytes"),
        Err(e) => assert_eq!(e.kind(), std::io::ErrorKind::ConnectionReset, "{e}"),
    }
    // ...but a well-formed client still gets service.
    let mut good = RpcClient::connect(addr).unwrap();
    let out = good.infer(&[0.1; 6]).unwrap();
    assert_eq!(out.len(), 3);
    assert!(reg.counter("rpc.decode_errors").get() >= 1);
    assert_eq!(reg.counter("rpc.handler_panics").get(), 0);

    rpc.shutdown();
    server.shutdown();
}

#[test]
fn bad_version_is_rejected_with_explanation() {
    let (server, rpc, reg) = start_stack();
    let mut s = raw_conn(rpc.local_addr());
    let mut hello = [0u8; proto::CLIENT_HELLO_LEN];
    hello[..4].copy_from_slice(&proto::MAGIC);
    hello[4..6].copy_from_slice(&999u16.to_le_bytes());
    s.write_all(&hello).unwrap();
    let (kind, _, payload) = read_frame(&mut s);
    assert_eq!(kind, proto::RESP_ERROR);
    let msg = String::from_utf8_lossy(&payload).into_owned();
    assert!(msg.contains("version"), "unexpected message: {msg}");
    assert!(reg.counter("rpc.decode_errors").get() >= 1);
    rpc.shutdown();
    server.shutdown();
}

#[test]
fn oversized_length_prefix_is_refused_without_allocation_or_panic() {
    let (server, rpc, reg) = start_stack();
    let mut s = raw_conn(rpc.local_addr());
    s.write_all(&proto::encode_client_hello()).unwrap();
    // A valid-CRC header announcing a 4 GiB payload: the server must
    // refuse on the announced length alone, before reading or allocating.
    let head = proto::encode_header(proto::REQ_INFER, 7, 0, u32::MAX);
    s.write_all(&head).unwrap();
    let (kind, id, payload) = read_frame(&mut s);
    assert_eq!(kind, proto::RESP_ERROR);
    assert_eq!(id, 7);
    let msg = String::from_utf8_lossy(&payload).into_owned();
    assert!(msg.contains("exceeds"), "unexpected message: {msg}");
    assert!(reg.counter("rpc.decode_errors").get() >= 1);
    assert_eq!(reg.counter("rpc.handler_panics").get(), 0);
    rpc.shutdown();
    server.shutdown();
}

#[test]
fn corrupt_header_crc_gets_error_frame_and_close() {
    let (server, rpc, reg) = start_stack();
    let mut s = raw_conn(rpc.local_addr());
    s.write_all(&proto::encode_client_hello()).unwrap();
    let mut head = proto::encode_header(proto::REQ_INFER, 1, 0, 24);
    head[8] ^= 0xff; // corrupt the id; the stored CRC no longer matches
    s.write_all(&head).unwrap();
    let (kind, _, payload) = read_frame(&mut s);
    assert_eq!(kind, proto::RESP_ERROR);
    let msg = String::from_utf8_lossy(&payload).into_owned();
    assert!(msg.contains("crc"), "unexpected message: {msg}");
    // No trustworthy framing left: the connection must be closed.
    let mut sink = [0u8; 16];
    assert_eq!(s.read(&mut sink).unwrap(), 0);
    assert!(reg.counter("rpc.decode_errors").get() >= 1);
    rpc.shutdown();
    server.shutdown();
}

#[test]
fn truncated_payload_counts_decode_error_and_never_answers() {
    let (server, rpc, reg) = start_stack();
    let mut s = raw_conn(rpc.local_addr());
    s.write_all(&proto::encode_client_hello()).unwrap();
    // Header promises 24 payload bytes; deliver 12 and hang up the write
    // side. The server must notice the mid-frame EOF, not wait forever.
    s.write_all(&proto::encode_header(proto::REQ_INFER, 3, 0, 24))
        .unwrap();
    s.write_all(&[0u8; 12]).unwrap();
    s.shutdown(Shutdown::Write).unwrap();
    assert!(
        wait_for(
            || reg.counter("rpc.decode_errors").get() >= 1,
            Duration::from_secs(5)
        ),
        "decode_errors never bumped for a truncated payload"
    );
    // No response frame: just the close.
    let mut sink = [0u8; 16];
    assert_eq!(s.read(&mut sink).unwrap(), 0);
    rpc.shutdown();
    server.shutdown();
}

#[test]
fn mid_frame_disconnect_in_header_counts_decode_error() {
    let (server, rpc, reg) = start_stack();
    let before = reg.counter("rpc.decode_errors").get();
    {
        let mut s = raw_conn(rpc.local_addr());
        s.write_all(&proto::encode_client_hello()).unwrap();
        // 10 of 24 header bytes, then vanish.
        s.write_all(&[0xab; 10]).unwrap();
    } // drop closes the socket
    assert!(
        wait_for(
            || reg.counter("rpc.decode_errors").get() > before,
            Duration::from_secs(5)
        ),
        "decode_errors never bumped for a mid-header disconnect"
    );
    assert_eq!(reg.counter("rpc.handler_panics").get(), 0);
    rpc.shutdown();
    server.shutdown();
}

#[test]
fn random_byte_prefix_fuzzing_never_panics_or_wedges() {
    let (server, rpc, reg) = start_stack();
    let addr = rpc.local_addr();
    let report = rpc::load::fuzz(addr, 32, 0xdecafbad, Duration::from_secs(5)).unwrap();
    assert_eq!(report.connections, 32);
    // Junk after a valid hello always has a CRC-protected header to fail;
    // junk from byte zero fails the hello decode — either way they count.
    assert!(
        wait_for(
            || reg.counter("rpc.decode_errors").get() >= 16,
            Duration::from_secs(5)
        ),
        "only {} decode errors after 32 junk connections",
        reg.counter("rpc.decode_errors").get()
    );
    assert_eq!(reg.counter("rpc.handler_panics").get(), 0);
    // The gauntlet survived: a real client still gets real answers.
    let mut good = RpcClient::connect(addr).unwrap();
    assert_eq!(good.infer(&[0.5; 6]).unwrap().len(), 3);
    rpc.shutdown();
    server.shutdown();
}
