//! The multiplexed protocol: pipelined requests on one connection,
//! out-of-order response delivery matched by frame id, and the
//! streaming request kind interleaved with unary frames.

use rpc::client::Outcome;
use rpc::{proto, RpcClient, RpcConfig, RpcServer};
use serve::{BatchPolicy, EngineConfig, EngineFactory, Server};
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::time::Duration;

const TRAIN: &str = r#"
name: t
layer {
  name: d
  type: Data
  batch: 4
  top: data
  top: label
}
layer {
  name: ip
  type: InnerProduct
  num_output: 3
  seed: 5
  bottom: data
  top: ip
}
layer {
  name: loss
  type: SoftmaxWithLoss
  bottom: ip
  bottom: label
  top: prob
}
"#;

/// One replica behind the wire front-end, with a configurable straggler
/// window so tests can park a batch mid-assembly.
fn start_stack(policy: BatchPolicy) -> (Server<f32>, RpcServer, obs::Registry) {
    let spec = net::NetSpec::parse(TRAIN).unwrap();
    let factory = EngineFactory::<f32>::new(
        &spec,
        &blob::Shape::from(vec![6usize]),
        &EngineConfig {
            max_batch: 4,
            n_threads: 1,
        },
        None,
    )
    .unwrap();
    let server = Server::start(factory.build_n(1).unwrap(), policy).unwrap();
    let reg = obs::Registry::new();
    let rpc = RpcServer::start(
        "127.0.0.1:0",
        server.client(),
        server.output_len(),
        RpcConfig::default(),
        &reg,
    )
    .unwrap();
    (server, rpc, reg)
}

/// A slow request issued before a fast one: their responses cross on the
/// wire, and the client matches them back by id. The slow request is a
/// no-deadline sample that waits out the whole straggler window; the
/// fast one carries a 1 µs budget, so the batcher sheds it with
/// `TimedOut` at assembly — *before* the batch computes — making the
/// crossing deterministic, not a scheduling accident.
#[test]
fn responses_cross_and_are_matched_by_id() {
    let (server, rpc, _reg) = start_stack(BatchPolicy {
        max_delay: Duration::from_millis(200),
        queue_depth: 64,
    });
    let mut client = RpcClient::connect(rpc.local_addr()).unwrap();
    let sample = vec![0.25f32; 6];

    let slow = client.send_infer(&sample, 0).unwrap();
    let fast = client.send_infer(&sample, 1).unwrap();
    assert_eq!(client.in_flight(), 2);

    let first = client.recv_completion().unwrap();
    assert_eq!(first.id, fast, "the later request must answer first");
    assert_eq!(first.outcome, Outcome::TimedOut);

    let second = client.recv_completion().unwrap();
    assert_eq!(second.id, slow);
    assert!(matches!(second.outcome, Outcome::Probs(_)));
    assert_eq!(client.in_flight(), 0);

    rpc.shutdown();
    server.shutdown();
}

/// The client against a scripted server that answers three pipelined
/// requests in reverse order — pure id bookkeeping, no timing involved.
#[test]
fn client_matches_reversed_responses_from_scripted_server() {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let script = std::thread::spawn(move || {
        let (mut s, _) = listener.accept().unwrap();
        s.write_all(&proto::encode_server_hello(proto::HELLO_OK, 2, 1))
            .unwrap();
        let mut hello = [0u8; proto::CLIENT_HELLO_LEN];
        s.read_exact(&mut hello).unwrap();
        // Read three unary requests, remembering their ids.
        let mut ids = Vec::new();
        for _ in 0..3 {
            let mut head = [0u8; proto::FRAME_HEADER_LEN];
            s.read_exact(&mut head).unwrap();
            let h = proto::decode_header(&head).unwrap();
            assert_eq!(h.kind, proto::REQ_INFER);
            let mut payload = vec![0u8; h.payload_len as usize];
            s.read_exact(&mut payload).unwrap();
            ids.push(h.id);
        }
        // Answer newest-first, each with a payload naming its id.
        for &id in ids.iter().rev() {
            let mut p = Vec::new();
            proto::write_f32s(&mut p, &[id as f32]);
            let head = proto::encode_header(proto::RESP_PROBS, id, 0, p.len() as u32);
            s.write_all(&head).unwrap();
            s.write_all(&p).unwrap();
        }
    });

    let mut client = RpcClient::connect(addr).unwrap();
    let ids: Vec<u64> = (0..3)
        .map(|_| client.send_infer(&[0.5, 0.5], 0).unwrap())
        .collect();
    // Completions arrive reversed; each must carry its own id's payload.
    for expect in ids.iter().rev() {
        let c = client.recv_completion().unwrap();
        assert_eq!(c.id, *expect);
        assert_eq!(c.outcome, Outcome::Probs(vec![*expect as f32]));
    }
    script.join().unwrap();
}

/// A stream frame and unary frames interleaved on one connection: every
/// sample's wire output is bit-identical to the in-process answer, and
/// the K stream responses are demuxed by index.
#[test]
fn stream_and_unary_interleave_bit_identically() {
    let (server, rpc, _reg) = start_stack(BatchPolicy::default());
    let samples: Vec<Vec<f32>> = (0..5)
        .map(|i| (0..6).map(|j| (i * 6 + j) as f32 * 0.03).collect())
        .collect();
    let expected: Vec<Vec<f32>> = samples
        .iter()
        .map(|s| server.infer(s).unwrap().to_vec())
        .collect();

    let mut client = RpcClient::connect(rpc.local_addr()).unwrap();
    // One frame carrying samples 0..3, then two unary frames, all in
    // flight together before any response is read.
    let flat: Vec<f32> = samples[..3].concat();
    let (sid, k) = client.send_infer_stream(&flat, 0).unwrap();
    assert_eq!(k, 3);
    let u3 = client.send_infer(&samples[3], 0).unwrap();
    let u4 = client.send_infer(&samples[4], 0).unwrap();
    assert_eq!(client.in_flight(), 5);

    let mut got: Vec<Option<Vec<f32>>> = vec![None; 5];
    for _ in 0..5 {
        let c = client.recv_completion().unwrap();
        let Outcome::Probs(p) = c.outcome else {
            panic!("unexpected outcome for id {}", c.id);
        };
        let slot = if c.id == sid {
            c.index as usize
        } else if c.id == u3 {
            3
        } else if c.id == u4 {
            4
        } else {
            panic!("unknown id {}", c.id);
        };
        assert!(got[slot].is_none(), "duplicate answer for slot {slot}");
        got[slot] = Some(p);
    }
    for (i, (g, e)) in got.iter().zip(&expected).enumerate() {
        assert_eq!(g.as_deref(), Some(e.as_slice()), "sample {i} differs");
    }

    // The convenience wrapper orders by index on its own.
    let ordered = client.infer_stream(&flat).unwrap();
    assert_eq!(ordered, expected[..3].to_vec());

    rpc.shutdown();
    server.shutdown();
}

/// A stream frame whose payload is not a positive multiple of the sample
/// size is refused with an error frame — and the connection survives it.
#[test]
fn malformed_stream_payload_is_refused_connection_lives() {
    let (server, rpc, reg) = start_stack(BatchPolicy::default());
    let mut s = TcpStream::connect(rpc.local_addr()).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    let mut hello = [0u8; proto::SERVER_HELLO_LEN];
    s.read_exact(&mut hello).unwrap();
    s.write_all(&proto::encode_client_hello()).unwrap();

    // 10 bytes: not a multiple of the 24-byte f32 sample.
    let junk = [0u8; 10];
    let head = proto::encode_header(proto::REQ_INFER_STREAM, 9, 0, junk.len() as u32);
    s.write_all(&head).unwrap();
    s.write_all(&junk).unwrap();
    let mut rhead = [0u8; proto::FRAME_HEADER_LEN];
    s.read_exact(&mut rhead).unwrap();
    let rh = proto::decode_header(&rhead).unwrap();
    assert_eq!(rh.kind, proto::RESP_ERROR);
    assert_eq!(rh.id, 9);
    let mut msg = vec![0u8; rh.payload_len as usize];
    s.read_exact(&mut msg).unwrap();
    assert!(String::from_utf8_lossy(&msg).contains("multiple"));
    assert_eq!(reg.counter("rpc.decode_errors").get(), 1);

    // Same connection, now a well-formed unary request: still served.
    let mut p = Vec::new();
    proto::write_f32s(&mut p, &[0.1f32; 6]);
    let head = proto::encode_header(proto::REQ_INFER, 10, 0, p.len() as u32);
    s.write_all(&head).unwrap();
    s.write_all(&p).unwrap();
    s.read_exact(&mut rhead).unwrap();
    let rh = proto::decode_header(&rhead).unwrap();
    assert_eq!(rh.kind, proto::RESP_PROBS);
    assert_eq!(rh.id, 10);

    drop(s);
    rpc.shutdown();
    server.shutdown();
}

/// Client-side validation: a stream batch that doesn't divide into
/// samples never reaches the wire.
#[test]
fn client_refuses_ragged_stream_batches() {
    let (server, rpc, _reg) = start_stack(BatchPolicy::default());
    let mut client = RpcClient::connect(rpc.local_addr()).unwrap();
    assert!(matches!(
        client.send_infer_stream(&[0.0f32; 7], 0),
        Err(rpc::RpcError::ShapeMismatch { .. })
    ));
    assert!(matches!(
        client.send_infer_stream(&[], 0),
        Err(rpc::RpcError::ShapeMismatch { .. })
    ));
    rpc.shutdown();
    server.shutdown();
}
