//! The load generator must *absorb* a transiently busy server: a
//! `HELLO_BUSY` greeting (handler slots and accept queue full) is retried
//! with backoff instead of failing the run, and the retries are counted in
//! the report.

use rpc::{load, proto, RpcConfig, RpcServer};
use serve::{BatchPolicy, EngineConfig, EngineFactory, Server};
use std::io::Read;
use std::net::TcpStream;
use std::time::Duration;

const TRAIN: &str = r#"
name: t
layer {
  name: d
  type: Data
  batch: 4
  top: data
  top: label
}
layer {
  name: ip
  type: InnerProduct
  num_output: 3
  seed: 5
  bottom: data
  top: ip
}
layer {
  name: loss
  type: SoftmaxWithLoss
  bottom: ip
  bottom: label
  top: prob
}
"#;

/// A serving stack squeezed to one handler over a one-deep accept queue,
/// so two held connections saturate admission.
fn start_tiny_stack() -> (Server<f32>, RpcServer, obs::Registry) {
    let spec = net::NetSpec::parse(TRAIN).unwrap();
    let factory = EngineFactory::<f32>::new(
        &spec,
        &blob::Shape::from(vec![6usize]),
        &EngineConfig {
            max_batch: 4,
            n_threads: 1,
        },
        None,
    )
    .unwrap();
    let server = Server::start(factory.build_n(1).unwrap(), BatchPolicy::default()).unwrap();
    let reg = obs::Registry::new();
    let cfg = RpcConfig {
        handlers: 1,
        backlog: 1,
        read_timeout: Duration::from_millis(50),
        ..RpcConfig::default()
    };
    let rpc = RpcServer::start(
        "127.0.0.1:0",
        server.client(),
        server.output_len(),
        cfg,
        &reg,
    )
    .unwrap();
    (server, rpc, reg)
}

/// Connect and read the server hello, holding the connection open —
/// occupies a handler slot (first call) or the accept queue (second).
fn occupy(addr: std::net::SocketAddr) -> TcpStream {
    let mut s = TcpStream::connect(addr).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    let mut hello = [0u8; proto::SERVER_HELLO_LEN];
    s.read_exact(&mut hello).unwrap();
    assert_eq!(
        proto::decode_server_hello(&hello).unwrap().status,
        proto::HELLO_OK
    );
    s
}

#[test]
fn busy_server_is_retried_with_backoff_not_failed() {
    let (server, rpc, _reg) = start_tiny_stack();
    let addr = rpc.local_addr();
    // Saturate admission: one connection being served, one queued.
    let held = (occupy(addr), occupy(addr));

    // Free the slots 250 ms from now — comfortably inside the load run's
    // default retry schedule (6 attempts from a 20 ms base), far outside
    // its first attempt.
    let release = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(250));
        drop(held);
    });

    let cfg = load::LoadConfig {
        clients: 1,
        requests: 8,
        ..load::LoadConfig::default()
    };
    let samples = vec![vec![0.25f32; 6]; 4];
    let report = load::run(addr, &cfg, &samples).expect("busy window should be absorbed");
    release.join().unwrap();

    assert!(
        report.busy_retries >= 1,
        "expected at least one busy retry, report: {report}"
    );
    assert_eq!(report.completed, 8, "all requests served after the retry");
    assert_eq!(report.errors, 0);
    assert!(report.csv().contains("busy_retries,"));

    rpc.shutdown();
    server.shutdown();
}

#[test]
fn busy_retries_zero_keeps_fail_fast_semantics() {
    let (server, rpc, _reg) = start_tiny_stack();
    let addr = rpc.local_addr();
    let _held = (occupy(addr), occupy(addr));
    let cfg = load::LoadConfig {
        clients: 1,
        requests: 1,
        busy_retries: 0,
        ..load::LoadConfig::default()
    };
    let samples = vec![vec![0.25f32; 6]];
    match load::run(addr, &cfg, &samples) {
        Err(rpc::RpcError::Busy) => {}
        other => panic!("expected Busy with retries disabled, got {other:?}"),
    }
    rpc.shutdown();
    server.shutdown();
}
