//! The readiness loop at scale: a thousand idle connections must cost
//! no threads and no CPU, and connect latency must be event-driven —
//! not quantised by the old 10 ms accept-poll tick.

use rpc::{proto, RpcClient, RpcConfig, RpcServer};
use serve::{BatchPolicy, EngineConfig, EngineFactory, Server};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

const TRAIN: &str = r#"
name: t
layer {
  name: d
  type: Data
  batch: 4
  top: data
  top: label
}
layer {
  name: ip
  type: InnerProduct
  num_output: 3
  seed: 5
  bottom: data
  top: ip
}
layer {
  name: loss
  type: SoftmaxWithLoss
  bottom: ip
  bottom: label
  top: prob
}
"#;

fn start_stack(cfg: RpcConfig) -> (Server<f32>, RpcServer, obs::Registry) {
    let spec = net::NetSpec::parse(TRAIN).unwrap();
    let factory = EngineFactory::<f32>::new(
        &spec,
        &blob::Shape::from(vec![6usize]),
        &EngineConfig {
            max_batch: 4,
            n_threads: 1,
        },
        None,
    )
    .unwrap();
    let server = Server::start(factory.build_n(1).unwrap(), BatchPolicy::default()).unwrap();
    let reg = obs::Registry::new();
    let rpc = RpcServer::start(
        "127.0.0.1:0",
        server.client(),
        server.output_len(),
        cfg,
        &reg,
    )
    .unwrap();
    (server, rpc, reg)
}

/// This process's thread count, from `/proc/self/status`.
fn thread_count() -> usize {
    let status = std::fs::read_to_string("/proc/self/status").unwrap();
    status
        .lines()
        .find_map(|l| l.strip_prefix("Threads:"))
        .and_then(|v| v.trim().parse().ok())
        .expect("Threads: line in /proc/self/status")
}

/// Complete the handshake on a raw socket so the connection is Open.
fn handshake(s: &mut TcpStream) {
    s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    let mut hello = [0u8; proto::SERVER_HELLO_LEN];
    s.read_exact(&mut hello).unwrap();
    let h = proto::decode_server_hello(&hello).unwrap();
    assert_eq!(h.status, proto::HELLO_OK);
    s.write_all(&proto::encode_client_hello()).unwrap();
}

/// A thousand established, idle connections: zero additional threads
/// (the old design spent one handler thread per active connection and a
/// thread per accept), and new work on a fresh connection still answers.
#[test]
fn a_thousand_idle_connections_cost_no_threads() {
    let (server, rpc, _reg) = start_stack(RpcConfig {
        max_connections: 1200,
        ..RpcConfig::default()
    });
    let baseline = thread_count();

    let mut idle = Vec::with_capacity(1000);
    for _ in 0..1000 {
        let mut s = TcpStream::connect(rpc.local_addr()).unwrap();
        handshake(&mut s);
        idle.push(s);
    }
    assert_eq!(
        thread_count(),
        baseline,
        "idle connections must not grow the thread count"
    );

    // The loop still has capacity for real work among the parked crowd.
    let mut client = RpcClient::connect(rpc.local_addr()).unwrap();
    let probs = client.infer(&[0.2f32; 6]).unwrap();
    assert_eq!(probs.len(), 3);
    assert_eq!(thread_count(), baseline);

    drop(idle);
    rpc.shutdown();
    server.shutdown();
}

/// Connect-to-hello latency is event-driven. The old acceptor slept in
/// 10 ms ticks, so the *median* handshake ate ~5 ms of pure waiting;
/// the readiness loop answers as soon as the kernel reports the
/// listener readable. Median over repeated probes keeps one slow
/// scheduler hiccup from failing the run.
#[test]
fn connect_to_hello_latency_is_not_tick_quantised() {
    let (server, rpc, _reg) = start_stack(RpcConfig::default());
    // Warm-up: first accept pays one-time lazy costs.
    drop(RpcClient::connect(rpc.local_addr()).unwrap());

    let mut lat = Vec::with_capacity(25);
    for _ in 0..25 {
        let t0 = Instant::now();
        let mut s = TcpStream::connect(rpc.local_addr()).unwrap();
        let mut hello = [0u8; proto::SERVER_HELLO_LEN];
        s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        s.read_exact(&mut hello).unwrap();
        lat.push(t0.elapsed());
        drop(s);
    }
    lat.sort();
    let median = lat[lat.len() / 2];
    assert!(
        median < Duration::from_millis(5),
        "median connect-to-hello took {median:?}; expected well under the \
         old 10 ms poll tick"
    );

    rpc.shutdown();
    server.shutdown();
}

/// A parked server must sleep, not tick: with connections idle and no
/// deadlines pending, the poll timeout is infinite, so the wakeup
/// counter stays flat.
#[test]
fn idle_loop_does_not_spin() {
    let (server, rpc, reg) = start_stack(RpcConfig::default());
    let mut conns: Vec<TcpStream> = (0..4)
        .map(|_| {
            let mut s = TcpStream::connect(rpc.local_addr()).unwrap();
            handshake(&mut s);
            s
        })
        .collect();
    // Let the handshake wakeups settle before sampling.
    std::thread::sleep(Duration::from_millis(100));
    let wakeups = reg.counter("rpc.loop_wakeups");
    let before = wakeups.get();
    std::thread::sleep(Duration::from_millis(400));
    let idle_delta = wakeups.get() - before;
    assert!(
        idle_delta <= 2,
        "idle event loop woke {idle_delta} times in 400 ms; it should sleep"
    );

    // And it is asleep, not wedged: traffic on a parked connection is
    // answered immediately.
    let mut p = Vec::new();
    proto::write_f32s(&mut p, &[0.3f32; 6]);
    let s = &mut conns[0];
    s.write_all(&proto::encode_header(
        proto::REQ_INFER,
        7,
        0,
        p.len() as u32,
    ))
    .unwrap();
    s.write_all(&p).unwrap();
    let mut rhead = [0u8; proto::FRAME_HEADER_LEN];
    s.read_exact(&mut rhead).unwrap();
    let rh = proto::decode_header(&rhead).unwrap();
    assert_eq!(rh.kind, proto::RESP_PROBS);
    assert_eq!(rh.id, 7);

    drop(conns);
    rpc.shutdown();
    server.shutdown();
}
