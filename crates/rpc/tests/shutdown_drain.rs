//! Graceful-drain behaviour: a client blocked in a read during drain must
//! get a shutdown frame or a clean EOF within the drain window, a slow
//! reader must not wedge `shutdown()`, and a wire drain request must reach
//! the server's owner.

use rpc::{proto, RpcClient, RpcConfig, RpcServer};
use serve::{BatchPolicy, EngineConfig, EngineFactory, Server};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

const TRAIN: &str = r#"
name: t
layer {
  name: d
  type: Data
  batch: 4
  top: data
  top: label
}
layer {
  name: ip
  type: InnerProduct
  num_output: 3
  seed: 5
  bottom: data
  top: ip
}
layer {
  name: loss
  type: SoftmaxWithLoss
  bottom: ip
  bottom: label
  top: prob
}
"#;

fn start_stack() -> (Server<f32>, RpcServer, obs::Registry) {
    let spec = net::NetSpec::parse(TRAIN).unwrap();
    let factory = EngineFactory::<f32>::new(
        &spec,
        &blob::Shape::from(vec![6usize]),
        &EngineConfig {
            max_batch: 4,
            n_threads: 1,
        },
        None,
    )
    .unwrap();
    let server = Server::start(factory.build_n(1).unwrap(), BatchPolicy::default()).unwrap();
    let reg = obs::Registry::new();
    let cfg = RpcConfig {
        read_timeout: Duration::from_millis(50),
        ..RpcConfig::default()
    };
    let rpc = RpcServer::start(
        "127.0.0.1:0",
        server.client(),
        server.output_len(),
        cfg,
        &reg,
    )
    .unwrap();
    (server, rpc, reg)
}

fn raw_conn(addr: std::net::SocketAddr) -> TcpStream {
    let mut s = TcpStream::connect(addr).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    s.set_write_timeout(Some(Duration::from_secs(10))).unwrap();
    let mut hello = [0u8; proto::SERVER_HELLO_LEN];
    s.read_exact(&mut hello).unwrap();
    proto::decode_server_hello(&hello).unwrap();
    s.write_all(&proto::encode_client_hello()).unwrap();
    s
}

fn send_infer(s: &mut TcpStream, id: u64) {
    let mut payload = Vec::new();
    proto::write_f32s(&mut payload, &[0.25f32; 6]);
    let head = proto::encode_header(proto::REQ_INFER, id, 0, payload.len() as u32);
    s.write_all(&head).unwrap();
    s.write_all(&payload).unwrap();
}

fn read_frame(s: &mut TcpStream) -> (u8, u64, Vec<u8>) {
    let mut head = [0u8; proto::FRAME_HEADER_LEN];
    s.read_exact(&mut head).unwrap();
    let h = proto::decode_header(&head).unwrap();
    let mut payload = vec![0u8; h.payload_len as usize];
    s.read_exact(&mut payload).unwrap();
    (h.kind, h.id, payload)
}

/// Regression test for the shutdown race: a client idling in a blocking
/// read while the server drains must be told — with a shutdown frame or a
/// clean EOF — within the drain window, not left to its own read timeout.
#[test]
fn client_blocked_in_read_is_released_by_drain() {
    let (server, rpc, _reg) = start_stack();
    let mut s = raw_conn(rpc.local_addr());
    // Prove the connection is live (and bound to a handler) first.
    send_infer(&mut s, 1);
    let (kind, id, _) = read_frame(&mut s);
    assert_eq!((kind, id), (proto::RESP_PROBS, 1));

    // Now sit in a blocking read with nothing in flight while the server
    // shuts down 100 ms from now.
    let shutdown = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(100));
        let t0 = Instant::now();
        rpc.shutdown();
        t0.elapsed()
    });
    let t0 = Instant::now();
    let mut head = [0u8; proto::FRAME_HEADER_LEN];
    match s.read_exact(&mut head) {
        Ok(()) => {
            let h = proto::decode_header(&head).unwrap();
            assert_eq!(h.kind, proto::RESP_SHUTDOWN, "expected a shutdown frame");
        }
        // A clean EOF is an acceptable goodbye too.
        Err(e) => assert_eq!(e.kind(), std::io::ErrorKind::UnexpectedEof, "{e}"),
    }
    assert!(
        t0.elapsed() < Duration::from_secs(3),
        "blocked reader waited {:?} for the drain goodbye",
        t0.elapsed()
    );
    let drain_time = shutdown.join().unwrap();
    assert!(
        drain_time < Duration::from_secs(3),
        "shutdown took {drain_time:?}"
    );
    server.shutdown();
}

/// A deliberately slow reader — response sent but never read — must not
/// wedge `shutdown()`; its buffered response stays readable afterwards.
#[test]
fn slow_reader_does_not_wedge_shutdown() {
    let (server, rpc, _reg) = start_stack();
    let mut s = raw_conn(rpc.local_addr());
    send_infer(&mut s, 9);
    // Let the server answer into the socket buffer, then drain while we
    // are conspicuously not reading.
    std::thread::sleep(Duration::from_millis(300));
    let t0 = Instant::now();
    rpc.shutdown();
    assert!(
        t0.elapsed() < Duration::from_secs(3),
        "shutdown blocked on a slow reader for {:?}",
        t0.elapsed()
    );
    // The answer was written before the drain; it is still in our buffer.
    let (kind, id, payload) = read_frame(&mut s);
    assert_eq!((kind, id), (proto::RESP_PROBS, 9));
    assert_eq!(payload.len(), 3 * std::mem::size_of::<f32>());
    // Followed by the drain goodbye (or a clean close).
    let mut head = [0u8; proto::FRAME_HEADER_LEN];
    match s.read_exact(&mut head) {
        Ok(()) => {
            let h = proto::decode_header(&head).unwrap();
            assert_eq!(h.kind, proto::RESP_SHUTDOWN);
        }
        Err(e) => assert_eq!(e.kind(), std::io::ErrorKind::UnexpectedEof, "{e}"),
    }
    server.shutdown();
}

/// A wire drain request is acknowledged and surfaces via
/// `drain_requested()` so the owning process knows to stop.
#[test]
fn wire_drain_request_is_acknowledged_and_surfaced() {
    let (server, rpc, _reg) = start_stack();
    assert!(!rpc.drain_requested());
    let mut client = RpcClient::connect(rpc.local_addr()).unwrap();
    client.drain_server().unwrap();
    assert!(rpc.drain_requested());
    rpc.shutdown();
    server.shutdown();
}
