//! Root crate of the reproduction workspace: re-exports the [`cgdnn`]
//! facade and hosts the runnable examples (`examples/`) and the
//! cross-crate integration tests (`tests/`).

pub use cgdnn::*;
