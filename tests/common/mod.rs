//! Shared helpers for the integration tests: a scaled-down convolutional
//! network (same layer types as LeNet, smaller shapes) so debug-build test
//! runs stay fast.

// Each test binary compiles its own copy of this module and none uses every
// helper, so per-binary dead-code analysis is noise here.
#![allow(dead_code)]

use cgdnn::prelude::*;

/// A miniature LeNet: batch 8, 1x12x12 inputs, conv-pool-conv-pool-ip-loss.
pub const TINY_SPEC: &str = r#"
name: tiny_lenet
layer {
  name: data
  type: Data
  batch: 8
  top: data
  top: label
}
layer {
  name: conv1
  type: Convolution
  bottom: data
  top: conv1
  num_output: 4
  kernel: 3
  seed: 31
}
layer {
  name: pool1
  type: Pooling
  bottom: conv1
  top: pool1
  method: MAX
  kernel: 2
  stride: 2
}
layer {
  name: conv2
  type: Convolution
  bottom: pool1
  top: conv2
  num_output: 6
  kernel: 3
  seed: 32
}
layer {
  name: pool2
  type: Pooling
  bottom: conv2
  top: pool2
  method: AVE
  kernel: 3
  stride: 2
}
layer {
  name: ip1
  type: InnerProduct
  bottom: pool2
  top: ip1
  num_output: 24
  seed: 33
}
layer {
  name: relu1
  type: ReLU
  bottom: ip1
  top: relu1
}
layer {
  name: ip2
  type: InnerProduct
  bottom: relu1
  top: ip2
  num_output: 10
  seed: 34
}
layer {
  name: loss
  type: SoftmaxWithLoss
  bottom: ip2
  bottom: label
  top: loss
}
"#;

/// 12x12 single-channel deterministic source with class-dependent pattern.
pub struct TinySource {
    pub n: usize,
    pub seed: u64,
}

impl BatchSource<f32> for TinySource {
    fn num_samples(&self) -> usize {
        self.n
    }

    fn sample_shape(&self) -> Shape {
        Shape::from([1usize, 12, 12])
    }

    fn fill(&self, index: usize, out: &mut [f32]) -> f32 {
        let mut rng = mmblas::Pcg32::new(self.seed, index as u64);
        let label = rng.uniform_u32(10) as usize;
        // Strongly separable classes: a label-dependent brightness level, a
        // label-dependent oriented stripe, and mild noise.
        let base = 0.1 + 0.08 * label as f64;
        for (i, v) in out.iter_mut().enumerate() {
            let y = i / 12;
            let x = i % 12;
            let phase = (x as f64 * (label as f64 + 1.0) * 0.35 + y as f64 * 0.2).sin();
            *v = (base + 0.3 * phase + 0.03 * rng.normal()) as f32;
        }
        label as f32
    }
}

/// Build the tiny network over a fresh deterministic source.
pub fn tiny_net(seed: u64) -> Net<f32> {
    let spec = NetSpec::parse(TINY_SPEC).expect("tiny spec parses");
    Net::from_spec(&spec, Some(Box::new(TinySource { n: 64, seed }))).expect("tiny net builds")
}

/// `f64` twin of [`TinySource`] (same pattern, full precision).
pub struct TinySource64 {
    pub n: usize,
    pub seed: u64,
}

impl BatchSource<f64> for TinySource64 {
    fn num_samples(&self) -> usize {
        self.n
    }

    fn sample_shape(&self) -> Shape {
        Shape::from([1usize, 12, 12])
    }

    fn fill(&self, index: usize, out: &mut [f64]) -> f64 {
        let mut rng = mmblas::Pcg32::new(self.seed, index as u64);
        let label = rng.uniform_u32(10) as usize;
        let base = 0.1 + 0.08 * label as f64;
        for (i, v) in out.iter_mut().enumerate() {
            let y = i / 12;
            let x = i % 12;
            let phase = (x as f64 * (label as f64 + 1.0) * 0.35 + y as f64 * 0.2).sin();
            *v = base + 0.3 * phase + 0.03 * rng.normal();
        }
        label as f64
    }
}

/// Build the tiny network in `f64` over a fresh deterministic source.
pub fn tiny_net_f64(seed: u64) -> Net<f64> {
    let spec = NetSpec::parse(TINY_SPEC).expect("tiny spec parses");
    Net::from_spec(&spec, Some(Box::new(TinySource64 { n: 64, seed }))).expect("tiny net builds")
}
