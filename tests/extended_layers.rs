//! Integration test for the extension layers (Concat, Split, Eltwise,
//! Power, AbsVal, EuclideanLoss): a branching network built from a spec —
//! a topology neither paper network has — must train, stay deterministic
//! across thread counts, and pass a finite-difference check end to end.

mod common;

use cgdnn::prelude::*;
use common::TinySource;

/// data -> split -> two parallel branches (ip+sigmoid / ip+abs) ->
/// eltwise-SUM -> concat with a powered copy -> ip -> loss.
const BRANCHY: &str = r#"
name: branchy
layer {
  name: data
  type: Data
  batch: 6
  top: data
  top: label
}
layer {
  name: flat
  type: Flatten
  bottom: data
  top: flat
}
layer {
  name: split
  type: Split
  bottom: flat
  top: s0
  top: s1
  top: s2
}
layer {
  name: fc_a
  type: InnerProduct
  bottom: s0
  top: fc_a
  num_output: 16
  seed: 41
}
layer {
  name: act_a
  type: Sigmoid
  bottom: fc_a
  top: act_a
}
layer {
  name: fc_b
  type: InnerProduct
  bottom: s1
  top: fc_b
  num_output: 16
  seed: 42
}
layer {
  name: act_b
  type: AbsVal
  bottom: fc_b
  top: act_b
}
layer {
  name: mix
  type: Eltwise
  operation: SUM
  coeffs: 0.7, 0.3
  bottom: act_a
  bottom: act_b
  top: mix
}
layer {
  name: sq
  type: Power
  power: 2
  scale: 0.1
  bottom: s2
  top: sq
}
layer {
  name: fc_sq
  type: InnerProduct
  bottom: sq
  top: fc_sq
  num_output: 16
  seed: 43
}
layer {
  name: cat
  type: Concat
  bottom: mix
  bottom: fc_sq
  top: cat
}
layer {
  name: fc_out
  type: InnerProduct
  bottom: cat
  top: fc_out
  num_output: 10
  seed: 44
}
layer {
  name: loss
  type: SoftmaxWithLoss
  bottom: fc_out
  bottom: label
  top: loss
}
"#;

fn branchy_net(seed: u64) -> Net<f32> {
    let spec = NetSpec::parse(BRANCHY).expect("branchy spec parses");
    Net::from_spec(&spec, Some(Box::new(TinySource { n: 48, seed }))).expect("branchy builds")
}

#[test]
fn branchy_network_builds_with_expected_shapes() {
    let net = branchy_net(1);
    assert_eq!(net.num_layers(), 13);
    assert_eq!(net.blob("s0").unwrap().shape().dims(), &[6, 144]);
    assert_eq!(net.blob("mix").unwrap().shape().dims(), &[6, 16]);
    assert_eq!(net.blob("cat").unwrap().shape().dims(), &[6, 32, 1, 1]);
    let summary = net.summary();
    assert!(summary.contains("Eltwise"));
    assert!(summary.contains("Concat"));
    assert!(summary.contains("total: 13 layers"));
    assert!(net.num_params() > 0);
}

#[test]
fn branchy_network_trains_and_is_thread_invariant() {
    let train = |threads: usize| -> Vec<f32> {
        let mut net = branchy_net(3);
        let team = ThreadTeam::new(threads);
        let run = RunConfig {
            reduction: ReductionMode::Canonical { groups: 16 },
            ..RunConfig::default()
        };
        let cfg = SolverConfig {
            base_lr: 0.05,
            ..SolverConfig::lenet()
        };
        let mut solver: Solver<f32> = Solver::new(cfg);
        solver.train(&mut net, &team, &run, 15)
    };
    let l1 = train(1);
    let l3 = train(3);
    assert_eq!(l1, l3, "branchy net not thread-invariant");
    assert!(
        l1.last().unwrap() < &l1[0],
        "branchy net failed to learn: {l1:?}"
    );
}

#[test]
fn branchy_gradient_check_spot() {
    // End-to-end finite differences through split/eltwise/concat/power.
    let analytic = {
        let mut net = branchy_net(9);
        let team = ThreadTeam::new(2);
        let run = RunConfig::default();
        net.zero_param_diffs();
        net.forward(&team, &run);
        net.backward(&team, &run);
        net.learnable_params()
            .iter()
            .map(|p| p.diff().to_vec())
            .collect::<Vec<_>>()
    };
    let loss_with = |pi: usize, ei: usize, delta: f32| -> f64 {
        let mut net = branchy_net(9);
        net.learnable_params_mut()[pi].data_mut()[ei] += delta;
        let team = ThreadTeam::new(1);
        net.forward(&team, &RunConfig::default()) as f64
    };
    let eps = 2e-3f32;
    for (pi, g) in analytic.iter().enumerate().step_by(2) {
        let ei = g.len() / 2;
        let lp = loss_with(pi, ei, eps);
        let lm = loss_with(pi, ei, -eps);
        let num = (lp - lm) / (2.0 * eps as f64);
        let ana = g[ei] as f64;
        assert!(
            (num - ana).abs() < 1e-2 * (1.0 + num.abs().max(ana.abs())),
            "param {pi} elem {ei}: numeric {num:.6} vs analytic {ana:.6}"
        );
    }
}
