//! Checkpoint/resume: training N iterations straight must equal training
//! N/2, snapshotting (params + solver state), restoring into fresh objects,
//! and training the remaining N/2 — bitwise, because nothing else is
//! stateful.

mod common;

use cgdnn::prelude::*;
use common::tiny_net;

fn fresh() -> (Net<f32>, Solver<f32>) {
    (tiny_net(55), Solver::new(SolverConfig::lenet()))
}

#[test]
fn resume_is_bitwise_equivalent_to_straight_run() {
    let team = ThreadTeam::new(2);
    let run = RunConfig {
        reduction: ReductionMode::Canonical { groups: 16 },
        ..RunConfig::default()
    };

    // Straight run: 6 iterations.
    let (mut net_a, mut solver_a) = fresh();
    let losses_a = solver_a.train(&mut net_a, &team, &run, 6);

    // Split run: 3 iterations, checkpoint, restore, 3 more.
    let (mut net_b, mut solver_b) = fresh();
    let mut losses_b = solver_b.train(&mut net_b, &team, &run, 3);
    let mut params_buf = Vec::new();
    net::save_params(&net_b, &mut params_buf).unwrap();
    let mut state_buf = Vec::new();
    solver_b.save_state(&mut state_buf).unwrap();
    let cursor = net_b.data_cursor().expect("tiny net has a data layer");
    drop((net_b, solver_b));

    let (mut net_c, mut solver_c) = fresh();
    // The data layer's cursor is training state too; restore it through
    // the cursor API (a full `Trainer::checkpoint` does this implicitly).
    net_c.set_data_cursor(cursor);
    net::load_params(&mut net_c, params_buf.as_slice()).unwrap();
    solver_c.load_state(&mut state_buf.as_slice()).unwrap();
    assert_eq!(solver_c.iteration(), 3);
    losses_b.extend(solver_c.train(&mut net_c, &team, &run, 3));

    assert_eq!(losses_a, losses_b, "resume diverged from the straight run");
}

#[test]
fn snapshot_rejects_wrong_network() {
    let (net_a, _) = fresh();
    let mut buf = Vec::new();
    net::save_params(&net_a, &mut buf).unwrap();

    // A LeNet has different parameter shapes.
    let mut other =
        CoarseGrainTrainer::<f32>::lenet(Box::new(SyntheticMnist::new(64, 0)), 1).unwrap();
    let err = net::load_params(other.net_mut(), buf.as_slice());
    assert!(err.is_err());
}

#[test]
fn solver_state_round_trip() {
    let team = ThreadTeam::new(1);
    let run = RunConfig::default();
    let (mut net, mut solver) = fresh();
    solver.train(&mut net, &team, &run, 2);
    let mut buf = Vec::new();
    solver.save_state(&mut buf).unwrap();
    let mut restored: Solver<f32> = Solver::new(SolverConfig::lenet());
    restored.load_state(buf.as_slice()).unwrap();
    assert_eq!(restored.iteration(), 2);
    // Truncation is rejected.
    let mut broken: Solver<f32> = Solver::new(SolverConfig::lenet());
    assert!(broken.load_state(&buf[..buf.len() - 2]).is_err());
}
