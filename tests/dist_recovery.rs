//! Elastic recovery, proven end-to-end over real loopback TCP: a worker
//! lost mid-step is recomputed on its exact shard (loss trajectory and
//! final parameters stay **bit-identical** to the single-process
//! reference), a respawned worker rejoins through `FRAME_REJOIN`, the
//! sliding-window restart budget turns a death storm into a typed error,
//! and every failure — join timeout, mid-chunk disconnect in either
//! direction — is typed and bounded by `io_timeout`, never a hang.

use cgdnn::prelude::*;
use datasets::ShardedSource;
use dist::{
    frames, run_coordinator, run_coordinator_elastic, run_worker, CoordinatorConfig, DistConfig,
    DistError, ElasticHooks, RecoveryPolicy, WorkerConfig, WorkerReport,
};
use rpc::proto;
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

fn spec(batch: usize) -> NetSpec {
    NetSpec::parse(&format!(
        r#"
name: micro
layer {{
  name: d
  type: Data
  batch: {batch}
  top: data
  top: label
}}
layer {{
  name: ip
  type: InnerProduct
  bottom: data
  top: ip
  num_output: 3
  seed: 17
}}
layer {{
  name: loss
  type: SoftmaxWithLoss
  bottom: ip
  bottom: label
  top: loss
}}
"#
    ))
    .unwrap()
}

/// 16 deterministic samples of shape [4] — two global batches of 8, so
/// runs cross an epoch boundary and recovery must reproduce cursor wrap.
struct Ramp;
impl BatchSource<f32> for Ramp {
    fn num_samples(&self) -> usize {
        16
    }
    fn sample_shape(&self) -> Shape {
        Shape::from([4usize])
    }
    fn fill(&self, index: usize, out: &mut [f32]) -> f32 {
        mmblas::set(0.1 * (index + 1) as f32, out);
        (index % 3) as f32
    }
}

fn flat_params(net: &Net<f32>) -> Vec<f32> {
    net.learnable_params()
        .iter()
        .flat_map(|p| p.data().iter().copied())
        .collect()
}

/// Single-process reference: one thread, canonical reduction with `world`
/// groups — what every elastic run below must reproduce bitwise.
fn reference_run(iters: usize, world: usize) -> (Vec<f32>, Vec<f32>) {
    let mut net = Net::from_spec(&spec(8), Some(Box::new(Ramp))).unwrap();
    let team = ThreadTeam::new(1);
    let run = RunConfig {
        reduction: ReductionMode::Canonical { groups: world },
        ..RunConfig::default()
    };
    let mut solver = Solver::<f32>::new(SolverConfig::lenet());
    let losses = solver.train(&mut net, &team, &run, iters);
    (losses, flat_params(&net))
}

fn worker_net(rank: usize, world: usize) -> Net<f32> {
    let sharded = ShardedSource::new(Box::new(Ramp), rank, world, 8);
    Net::from_spec(&spec(8 / world), Some(Box::new(sharded))).unwrap()
}

/// Test hooks: shard nets from the shared micro spec; respawn either
/// starts a fresh rejoin-handshake worker thread or reports "externally
/// managed" (`Ok(false)`).
struct TestHooks {
    addr: String,
    world: usize,
    respawn_threads: bool,
    spawned: Vec<JoinHandle<Result<WorkerReport, DistError>>>,
}

impl ElasticHooks for TestHooks {
    fn shard_net(&mut self, rank: usize) -> Result<Net<f32>, DistError> {
        Ok(worker_net(rank, self.world))
    }

    fn respawn(&mut self, rank: usize) -> Result<bool, DistError> {
        if !self.respawn_threads {
            return Ok(false);
        }
        let addr = self.addr.clone();
        let world = self.world;
        self.spawned.push(std::thread::spawn(move || {
            let mut net = worker_net(rank, world);
            let mut cfg = WorkerConfig::new(addr, rank);
            cfg.io_timeout = Duration::from_secs(10);
            cfg.rejoin = true;
            run_worker(&mut net, &cfg)
        }));
        Ok(true)
    }
}

struct Outcome {
    result: Result<Vec<f32>, DistError>,
    params: Vec<f32>,
    reports: Vec<Result<WorkerReport, DistError>>,
    respawned: Vec<Result<WorkerReport, DistError>>,
}

/// Elastic coordinator on this thread, `world` workers on threads, CGRP
/// over loopback TCP. `fails` injects `fail_after_steps` per rank;
/// `step_delay` slows the step loop so respawned workers have time to
/// reconnect before the run ends.
fn elastic_run(
    iters: usize,
    world: usize,
    fails: &[(usize, u64)],
    policy: RecoveryPolicy,
    respawn_threads: bool,
    step_delay: Duration,
) -> Outcome {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let handles: Vec<_> = (0..world)
        .map(|rank| {
            let fail_after = fails.iter().find(|(r, _)| *r == rank).map(|(_, k)| *k);
            std::thread::spawn(move || {
                let mut net = worker_net(rank, world);
                let mut cfg = WorkerConfig::new(addr.to_string(), rank);
                cfg.io_timeout = Duration::from_secs(10);
                cfg.fail_after_steps = fail_after;
                run_worker(&mut net, &cfg)
            })
        })
        .collect();

    let mut net = Net::from_spec(&spec(8), Some(Box::new(Ramp))).unwrap();
    let mut solver = Solver::<f32>::new(SolverConfig::lenet());
    let cfg = CoordinatorConfig {
        dist: DistConfig {
            world,
            effective_batch: 8,
            num_samples: 16,
            iters,
            io_timeout: Duration::from_secs(10),
        },
        join_timeout: Duration::from_secs(10),
    };
    let mut hooks = TestHooks {
        addr: addr.to_string(),
        world,
        respawn_threads,
        spawned: Vec::new(),
    };
    let result = run_coordinator_elastic(
        listener,
        &mut net,
        &mut solver,
        &cfg,
        policy,
        &mut hooks,
        |_, _, _, _| {
            std::thread::sleep(step_delay);
            Ok(())
        },
    );
    let reports = handles.into_iter().map(|h| h.join().unwrap()).collect();
    let respawned = hooks
        .spawned
        .into_iter()
        .map(|h| h.join().unwrap())
        .collect();
    Outcome {
        result,
        params: flat_params(&net),
        reports,
        respawned,
    }
}

#[test]
fn degraded_run_stays_bit_identical() {
    let (ref_losses, ref_params) = reference_run(5, 2);
    // Rank 1 dies mid-step at step 2 and nothing respawns it: the
    // coordinator recomputes its shard for the remaining steps.
    let out = elastic_run(
        5,
        2,
        &[(1, 2)],
        RecoveryPolicy::default(),
        false,
        Duration::ZERO,
    );
    let losses = out.result.expect("degraded run should complete");
    assert_eq!(ref_losses, losses, "loss trajectory diverged");
    assert_eq!(ref_params, out.params, "final parameters diverged");
    assert_eq!(
        out.reports[0].as_ref().map(|r| r.steps),
        Ok(5),
        "the survivor ran every step: {:?}",
        out.reports[0]
    );
    assert!(
        matches!(out.reports[1], Err(DistError::Io(_))),
        "rank 1 kept its injected error: {:?}",
        out.reports[1]
    );
}

#[test]
fn respawned_worker_rejoins_and_run_stays_bit_identical() {
    let (ref_losses, ref_params) = reference_run(6, 2);
    // Rank 1 dies at step 1; the hooks respawn it as a fresh thread that
    // rejoins with FRAME_REJOIN. The step delay gives the respawn time to
    // land, so later steps are served by the rejoined worker, not by
    // recompute.
    let out = elastic_run(
        6,
        2,
        &[(1, 1)],
        RecoveryPolicy::default(),
        true,
        Duration::from_millis(50),
    );
    let losses = out.result.expect("elastic run should complete");
    assert_eq!(ref_losses, losses, "loss trajectory diverged");
    assert_eq!(ref_params, out.params, "final parameters diverged");
    assert_eq!(out.respawned.len(), 1, "exactly one respawn");
    let report = out.respawned[0]
        .as_ref()
        .expect("respawned worker should end cleanly");
    assert!(
        report.steps >= 1,
        "rejoined worker served steps, got {report:?}"
    );
}

#[test]
fn restart_budget_exhaustion_is_typed_and_bounded() {
    let t0 = Instant::now();
    // Budget of one death: rank 1's death at step 1 is absorbed, rank 0's
    // at step 2 exhausts the window.
    let policy = RecoveryPolicy {
        max_restarts: 1,
        restart_window: Duration::from_secs(60),
        degraded_ok: false,
    };
    let out = elastic_run(5, 2, &[(1, 1), (0, 2)], policy, false, Duration::ZERO);
    match out.result {
        Err(DistError::RestartBudgetExhausted { rank, deaths }) => {
            assert_eq!(rank, 0);
            assert_eq!(deaths, 2);
        }
        other => panic!("expected RestartBudgetExhausted, got {other:?}"),
    }
    assert!(
        t0.elapsed() < Duration::from_secs(8),
        "teardown took {:?} — barrier not released",
        t0.elapsed()
    );
}

#[test]
fn degraded_ok_survives_budget_exhaustion_bit_identically() {
    let (ref_losses, ref_params) = reference_run(5, 2);
    // Same death storm, but degraded_ok: after the budget runs dry the
    // coordinator stops respawning and finishes every remaining step by
    // recomputing both shards locally.
    let policy = RecoveryPolicy {
        max_restarts: 1,
        restart_window: Duration::from_secs(60),
        degraded_ok: true,
    };
    let out = elastic_run(5, 2, &[(1, 1), (0, 2)], policy, false, Duration::ZERO);
    let losses = out.result.expect("degraded_ok run should complete");
    assert_eq!(ref_losses, losses, "loss trajectory diverged");
    assert_eq!(ref_params, out.params, "final parameters diverged");
}

#[test]
fn join_timeout_is_typed_and_bounded() {
    let t0 = Instant::now();
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    // One of two workers shows up; the other seat stays empty.
    let worker = std::thread::spawn(move || {
        let mut net = worker_net(0, 2);
        let mut cfg = WorkerConfig::new(addr.to_string(), 0);
        cfg.io_timeout = Duration::from_secs(2);
        run_worker(&mut net, &cfg)
    });
    let mut net = Net::from_spec(&spec(8), Some(Box::new(Ramp))).unwrap();
    let mut solver = Solver::<f32>::new(SolverConfig::lenet());
    let cfg = CoordinatorConfig {
        dist: DistConfig {
            world: 2,
            effective_batch: 8,
            num_samples: 16,
            iters: 3,
            io_timeout: Duration::from_secs(2),
        },
        join_timeout: Duration::from_millis(300),
    };
    let result = run_coordinator(listener, &mut net, &mut solver, &cfg, |_, _, _, _| Ok(()));
    match result {
        Err(DistError::JoinTimeout { joined, world }) => {
            assert_eq!((joined, world), (1, 2));
        }
        other => panic!("expected JoinTimeout, got {other:?}"),
    }
    // The admitted worker is not left hanging: the listener and its stream
    // drop with the coordinator, so it sees a typed lost-link error.
    let report = worker.join().unwrap();
    assert!(
        matches!(report, Err(DistError::CoordinatorLost(_))),
        "admitted worker got {report:?}"
    );
    assert!(
        t0.elapsed() < Duration::from_secs(8),
        "join timeout took {:?}",
        t0.elapsed()
    );
}

/// ~100k parameters — more than one `FRAME_PARAMS` chunk
/// (`proto::MAX_CHUNK_F32S` = 65 536 f32s), so a peer can vanish
/// mid-tensor, the worst spot for a disconnect.
fn big_spec(batch: usize) -> NetSpec {
    NetSpec::parse(&format!(
        r#"
name: wide
layer {{
  name: d
  type: Data
  batch: {batch}
  top: data
  top: label
}}
layer {{
  name: ip
  type: InnerProduct
  bottom: data
  top: ip
  num_output: 20000
  seed: 17
}}
layer {{
  name: loss
  type: SoftmaxWithLoss
  bottom: ip
  bottom: label
  top: loss
}}
"#
    ))
    .unwrap()
}

#[test]
fn mid_chunk_params_disconnect_is_typed_on_the_coordinator() {
    let t0 = Instant::now();
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    // A protocol-correct worker that joins, reads exactly one parameter
    // chunk of the first broadcast, and vanishes with the rest in flight.
    let fake = std::thread::spawn(move || {
        let mut s = TcpStream::connect(addr).unwrap();
        s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        let mut hello = [0u8; proto::SERVER_HELLO_LEN];
        s.read_exact(&mut hello).unwrap();
        s.write_all(&proto::encode_client_hello()).unwrap();
        frames::send_frame(&mut s, proto::FRAME_JOIN, 0, 0, &[]).unwrap();
        let welcome = frames::recv_frame(&mut s).unwrap();
        assert_eq!(welcome.kind, proto::FRAME_WELCOME);
        let first = frames::recv_frame(&mut s).unwrap();
        assert_eq!(first.kind, proto::FRAME_PARAMS);
        drop(s);
    });
    let mut net = Net::from_spec(&big_spec(8), Some(Box::new(Ramp))).unwrap();
    let mut solver = Solver::<f32>::new(SolverConfig::lenet());
    let cfg = CoordinatorConfig {
        dist: DistConfig {
            world: 1,
            effective_batch: 8,
            num_samples: 16,
            iters: 3,
            io_timeout: Duration::from_secs(3),
        },
        join_timeout: Duration::from_secs(5),
    };
    let result = run_coordinator(listener, &mut net, &mut solver, &cfg, |_, _, _, _| Ok(()));
    match result {
        Err(DistError::WorkerDied { rank, .. }) => assert_eq!(rank, 0),
        other => panic!("expected WorkerDied, got {other:?}"),
    }
    fake.join().unwrap();
    assert!(
        t0.elapsed() < Duration::from_secs(8),
        "mid-chunk death took {:?} — not bounded by io_timeout",
        t0.elapsed()
    );
}

#[test]
fn mid_chunk_params_disconnect_is_typed_on_the_worker() {
    let t0 = Instant::now();
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let sharded = ShardedSource::new(Box::new(Ramp), 0, 1, 8);
    let mut wnet = Net::from_spec(&big_spec(8), Some(Box::new(sharded))).unwrap();
    let num_params = wnet.num_params();
    let worker = std::thread::spawn(move || {
        let mut cfg = WorkerConfig::new(addr.to_string(), 0);
        cfg.io_timeout = Duration::from_secs(2);
        run_worker(&mut wnet, &cfg)
    });
    // A protocol-correct coordinator that admits the worker, announces a
    // two-chunk parameter tensor, sends only the first chunk, and hangs
    // up mid-tensor.
    let (mut s, _) = listener.accept().unwrap();
    s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    s.write_all(&proto::encode_server_hello(
        proto::HELLO_OK,
        num_params as u32,
        1,
    ))
    .unwrap();
    let mut hello = [0u8; proto::CLIENT_HELLO_LEN];
    s.read_exact(&mut hello).unwrap();
    let join = frames::recv_frame(&mut s).unwrap();
    assert_eq!(join.kind, proto::FRAME_JOIN);
    frames::send_frame(
        &mut s,
        proto::FRAME_WELCOME,
        0,
        0,
        &frames::encode_welcome(&frames::Welcome {
            world: 1,
            effective_batch: 8,
            iters: 3,
            flags: 0,
            coord_clock_us: 0,
        }),
    )
    .unwrap();
    let chunk = vec![0.0f32; proto::MAX_CHUNK_F32S];
    let mut payload = Vec::new();
    proto::write_f32s(&mut payload, &chunk);
    frames::send_frame(
        &mut s,
        proto::FRAME_PARAMS,
        0,
        proto::encode_chunk_aux(0, 2),
        &payload,
    )
    .unwrap();
    drop(s);

    let report = worker.join().unwrap();
    assert!(
        matches!(report, Err(DistError::CoordinatorLost(_))),
        "worker got {report:?}"
    );
    assert!(
        t0.elapsed() < Duration::from_secs(8),
        "mid-chunk loss took {:?} — not bounded by io_timeout",
        t0.elapsed()
    );
}
