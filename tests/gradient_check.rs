//! Whole-network numerical gradient check: perturb individual weights of
//! every learnable layer and compare the loss delta against the analytic
//! gradient produced by the parallel backward pass.

mod common;

use cgdnn::prelude::*;
use common::tiny_net;

/// Evaluate the loss of one fixed batch. Rewinding the data layer is not
/// exposed, so we rebuild the net and replay `skip` batches; with skip = 0
/// every call sees the first batch.
fn loss_with(perturb: Option<(usize, usize, f32)>, threads: usize) -> f64 {
    let mut net = tiny_net(77);
    if let Some((param_idx, elem, delta)) = perturb {
        let mut params = net.learnable_params_mut();
        params[param_idx].data_mut()[elem] += delta;
    }
    let team = ThreadTeam::new(threads);
    net.forward(&team, &RunConfig::default()) as f64
}

fn analytic_gradients(threads: usize) -> Vec<Vec<f32>> {
    let mut net = tiny_net(77);
    let team = ThreadTeam::new(threads);
    let run = RunConfig {
        reduction: ReductionMode::Canonical { groups: 16 },
        ..RunConfig::default()
    };
    net.zero_param_diffs();
    net.forward(&team, &run);
    net.backward(&team, &run);
    net.learnable_params()
        .iter()
        .map(|p| p.diff().to_vec())
        .collect()
}

#[test]
fn network_gradients_match_finite_differences() {
    let grads = analytic_gradients(2);
    let n_params = grads.len();
    assert_eq!(n_params, 8, "4 learnable layers x (weight + bias)");
    let eps = 2e-3f32;
    // Spot-check a few elements of every parameter blob.
    for (pi, g) in grads.iter().enumerate() {
        for &ei in &[0usize, g.len() / 2, g.len() - 1] {
            let lp = loss_with(Some((pi, ei, eps)), 1);
            let lm = loss_with(Some((pi, ei, -eps)), 1);
            let numeric = (lp - lm) / (2.0 * eps as f64);
            let analytic = g[ei] as f64;
            // f32 forward + finite differences: ~0.3% relative noise is
            // expected; 1% is the red line for a real gradient bug.
            assert!(
                (numeric - analytic).abs() < 1e-2 * (1.0 + numeric.abs().max(analytic.abs())),
                "param {pi} elem {ei}: numeric {numeric:.6} vs analytic {analytic:.6}"
            );
        }
    }
}

#[test]
fn gradients_identical_across_thread_counts() {
    let g1 = analytic_gradients(1);
    let g4 = analytic_gradients(4);
    assert_eq!(g1, g4, "canonical-mode gradients must be bitwise equal");
}

#[test]
fn gradients_are_nonzero_everywhere_that_matters() {
    let grads = analytic_gradients(2);
    for (i, g) in grads.iter().enumerate() {
        let nonzero = g.iter().filter(|v| **v != 0.0).count();
        assert!(
            nonzero * 2 >= g.len(),
            "param {i}: only {nonzero}/{} nonzero gradient entries",
            g.len()
        );
    }
}
