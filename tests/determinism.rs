//! Cross-crate determinism and convergence-invariance tests — the paper's
//! headline "convergence-invariant" property, verified on real training.

mod common;

use cgdnn::prelude::*;
use common::{tiny_net, TinySource};

fn train_losses(threads: usize, mode: ReductionMode, schedule: Schedule, iters: usize) -> Vec<f32> {
    let mut net = tiny_net(5);
    let team = ThreadTeam::new(threads);
    let run = RunConfig {
        reduction: mode,
        schedule,
        ..RunConfig::default()
    };
    let mut solver: Solver<f32> = Solver::new(SolverConfig::lenet());
    solver.train(&mut net, &team, &run, iters)
}

#[test]
fn canonical_reduction_is_bitwise_invariant_across_threads() {
    let base = train_losses(
        1,
        ReductionMode::Canonical { groups: 16 },
        Schedule::Static,
        3,
    );
    for t in [2, 3, 4, 6] {
        let l = train_losses(
            t,
            ReductionMode::Canonical { groups: 16 },
            Schedule::Static,
            3,
        );
        assert_eq!(base, l, "thread count {t} changed the loss trajectory");
    }
}

#[test]
fn canonical_reduction_is_bitwise_invariant_across_schedules() {
    let base = train_losses(
        3,
        ReductionMode::Canonical { groups: 16 },
        Schedule::Static,
        2,
    );
    for sched in [
        Schedule::StaticChunk(3),
        Schedule::Dynamic(2),
        Schedule::Guided,
    ] {
        let l = train_losses(3, ReductionMode::Canonical { groups: 16 }, sched, 2);
        assert_eq!(base, l, "schedule {sched:?} changed the loss trajectory");
    }
}

#[test]
fn ordered_reduction_is_deterministic_per_thread_count() {
    for t in [1, 2, 4] {
        let a = train_losses(t, ReductionMode::Ordered, Schedule::Static, 3);
        let b = train_losses(t, ReductionMode::Ordered, Schedule::Static, 3);
        assert_eq!(a, b, "repeat run differed at {t} threads");
    }
}

#[test]
fn ordered_one_thread_equals_canonical_any_thread() {
    // The 1-thread Ordered run is the sequential reference; Canonical must
    // reproduce it bitwise (slot chunks of Canonical(G) at T=1 are merged in
    // the identical order).
    let seq = train_losses(1, ReductionMode::Ordered, Schedule::Static, 3);
    let can1 = train_losses(
        1,
        ReductionMode::Canonical { groups: 16 },
        Schedule::Static,
        3,
    );
    // Both accumulate sample-chunk gradients in the same global order only
    // when the chunking matches; with 16 groups vs 1 group the FP grouping
    // differs, so allow tolerance here — the *invariance across T* above is
    // the strict guarantee.
    for (a, b) in seq.iter().zip(&can1) {
        assert!((a - b).abs() < 1e-4, "sequential {a} vs canonical {b}");
    }
}

#[test]
fn unordered_reduction_still_converges() {
    let l = train_losses(4, ReductionMode::Unordered, Schedule::Static, 6);
    assert!(l.iter().all(|v| v.is_finite()));
    assert!(
        l.last().unwrap() < &l[0],
        "unordered training should still reduce loss: {l:?}"
    );
}

#[test]
fn forward_is_bitwise_reproducible_for_any_team_size() {
    let forward_scores = |threads: usize| -> Vec<f32> {
        let mut net = tiny_net(9);
        let team = ThreadTeam::new(threads);
        net.forward(&team, &RunConfig::default());
        net.blob("ip2").unwrap().data().to_vec()
    };
    let base = forward_scores(1);
    for t in [2, 4, 5] {
        assert_eq!(base, forward_scores(t), "forward differs at {t} threads");
    }
}

#[test]
fn serving_inference_is_bitwise_invariant_across_team_sizes() {
    // Train briefly, snapshot, then push one identical request batch
    // through serving engines (Phase::Test forward path) with team sizes
    // 1, 2, and 8 — the outputs must be bit-identical.
    let mut trained = tiny_net(5);
    let team = ThreadTeam::new(2);
    let run = RunConfig {
        reduction: ReductionMode::Canonical { groups: 16 },
        ..RunConfig::default()
    };
    let mut solver: Solver<f32> = Solver::new(SolverConfig::lenet());
    solver.train(&mut trained, &team, &run, 2);
    let mut snap = Vec::new();
    net::save_params(&trained, &mut snap).unwrap();

    let spec = NetSpec::parse(common::TINY_SPEC).unwrap();
    let shape = Shape::from([1usize, 12, 12]);
    let src = TinySource { n: 16, seed: 77 };
    let samples: Vec<Vec<f32>> = (0..6)
        .map(|i| {
            let mut s = vec![0.0f32; 144];
            src.fill(i, &mut s);
            s
        })
        .collect();
    let refs: Vec<&[f32]> = samples.iter().map(|s| s.as_slice()).collect();

    let outputs = |threads: usize| -> Vec<f32> {
        let mut e = serve::Engine::<f32>::build(
            &spec,
            &shape,
            &serve::EngineConfig {
                max_batch: 8,
                n_threads: threads,
            },
        )
        .unwrap();
        e.load_weights(snap.as_slice()).unwrap();
        e.infer_batch(&refs).unwrap().to_vec()
    };
    let base = outputs(1);
    assert_eq!(base.len() % 6, 0, "flat slice covers all 6 samples");
    for t in [2, 8] {
        assert_eq!(base, outputs(t), "serving output differs at {t} threads");
    }
}

#[test]
fn data_source_is_deterministic_across_nets() {
    // Two nets over two source instances with the same seed serve identical
    // batches (prerequisite for every invariance claim above).
    let s1 = TinySource { n: 64, seed: 2 };
    let s2 = TinySource { n: 64, seed: 2 };
    let mut a = vec![0.0f32; 144];
    let mut b = vec![0.0f32; 144];
    for i in 0..8 {
        let la = s1.fill(i, &mut a);
        let lb = s2.fill(i, &mut b);
        assert_eq!(la, lb);
        assert_eq!(a, b);
    }
}
