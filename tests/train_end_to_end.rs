//! End-to-end training tests: the full stack (datasets -> net -> layers ->
//! omprt -> mmblas -> solvers) must genuinely learn.

mod common;

use cgdnn::prelude::*;
use common::tiny_net;

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "40-iteration training loop; run with --release"
)]
fn tiny_convnet_learns_the_synthetic_classes() {
    let mut net = tiny_net(1);
    let team = ThreadTeam::new(2);
    let run = RunConfig::default();
    let mut solver: Solver<f32> = Solver::new(SolverConfig {
        base_lr: 0.05,
        ..SolverConfig::lenet()
    });
    let losses = solver.train(&mut net, &team, &run, 40);
    let first = losses[..4].iter().sum::<f32>() / 4.0;
    let last = losses[losses.len() - 4..].iter().sum::<f32>() / 4.0;
    assert!(
        last < first * 0.8,
        "expected clear learning: first ~{first}, last ~{last}"
    );
    assert!(losses.iter().all(|l| l.is_finite()));
}

#[test]
fn all_three_solvers_reduce_loss() {
    for solver_type in [SolverType::Sgd, SolverType::Nesterov, SolverType::AdaGrad] {
        let mut net = tiny_net(3);
        let team = ThreadTeam::new(2);
        let run = RunConfig::default();
        let cfg = SolverConfig {
            solver_type,
            base_lr: if solver_type == SolverType::AdaGrad {
                0.05
            } else {
                0.02
            },
            momentum: 0.9,
            weight_decay: 0.0,
            lr_policy: LrPolicy::Fixed,
            eps: 1e-8,
            clip_gradients: None,
        };
        let mut solver: Solver<f32> = Solver::new(cfg);
        let losses = solver.train(&mut net, &team, &run, 25);
        assert!(
            losses.last().unwrap() < &losses[0],
            "{solver_type:?} failed to learn: {losses:?}"
        );
    }
}

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "full-size LeNet iteration; run with --release"
)]
fn lenet_full_size_one_iteration_runs() {
    // One full-size LeNet iteration (batch 64, 28x28) through the real
    // parallel path.
    let mut trainer =
        CoarseGrainTrainer::<f32>::lenet(Box::new(SyntheticMnist::new(128, 1)), 3).unwrap();
    let loss = trainer.step();
    assert!(loss.is_finite());
    assert!(loss > 1.0 && loss < 4.0, "initial loss ~ln(10): {loss}");
}

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "full-size CIFAR iteration; run with --release"
)]
fn cifar_full_size_one_iteration_runs() {
    let mut trainer =
        CoarseGrainTrainer::<f32>::cifar10_full(Box::new(SyntheticCifar::new(128, 1)), 3).unwrap();
    let loss = trainer.step();
    assert!(loss.is_finite());
    assert!(loss > 1.0 && loss < 4.0, "initial loss ~ln(10): {loss}");
}

#[test]
fn per_layer_timing_is_recorded() {
    let mut net = tiny_net(4);
    let team = ThreadTeam::new(1);
    let run = RunConfig::default();
    net.forward(&team, &run);
    net.backward(&team, &run);
    let f = net.last_forward_seconds();
    let b = net.last_backward_seconds();
    assert_eq!(f.len(), net.num_layers());
    // Every layer's forward took measurable (>= 0) time; data layer bwd = 0.
    assert!(f.iter().all(|&t| t >= 0.0));
    assert_eq!(b[0], 0.0, "data layer has no backward");
    assert!(f.iter().sum::<f64>() > 0.0);
}

#[test]
fn test_phase_does_not_touch_parameters() {
    let mut net = tiny_net(8);
    let team = ThreadTeam::new(2);
    let before: Vec<Vec<f32>> = net
        .learnable_params()
        .iter()
        .map(|p| p.data().to_vec())
        .collect();
    let run = RunConfig {
        phase: Phase::Test,
        ..RunConfig::default()
    };
    net.forward(&team, &run);
    let after: Vec<Vec<f32>> = net
        .learnable_params()
        .iter()
        .map(|p| p.data().to_vec())
        .collect();
    assert_eq!(before, after);
}
