//! The dist subsystem's headline claims, proven end-to-end over real
//! loopback TCP: a multi-process-shaped run (coordinator + worker threads,
//! full CGRP wire protocol) produces a loss trajectory and final
//! parameters **bit-identical** to single-process training with
//! `Canonical {{ groups: world }}` on one thread — and a worker death
//! surfaces as a typed error on every participant, with no hang.

use cgdnn::prelude::*;
use datasets::ShardedSource;
use dist::{run_coordinator, run_worker, CoordinatorConfig, DistConfig, DistError, WorkerConfig};
use std::net::TcpListener;
use std::time::{Duration, Instant};

fn spec(batch: usize) -> NetSpec {
    NetSpec::parse(&format!(
        r#"
name: micro
layer {{
  name: d
  type: Data
  batch: {batch}
  top: data
  top: label
}}
layer {{
  name: ip
  type: InnerProduct
  bottom: data
  top: ip
  num_output: 3
  seed: 17
}}
layer {{
  name: loss
  type: SoftmaxWithLoss
  bottom: ip
  bottom: label
  top: loss
}}
"#
    ))
    .unwrap()
}

/// 16 deterministic samples of shape [4]: enough for two global batches of
/// 8, so the run crosses an epoch boundary and exercises cursor wrap.
struct Ramp;
impl BatchSource<f32> for Ramp {
    fn num_samples(&self) -> usize {
        16
    }
    fn sample_shape(&self) -> Shape {
        Shape::from([4usize])
    }
    fn fill(&self, index: usize, out: &mut [f32]) -> f32 {
        mmblas::set(0.1 * (index + 1) as f32, out);
        (index % 3) as f32
    }
}

fn flat_params(net: &Net<f32>) -> Vec<f32> {
    net.learnable_params()
        .iter()
        .flat_map(|p| p.data().iter().copied())
        .collect()
}

/// Single-process reference: one thread, canonical reduction with `world`
/// groups — the configuration the distributed run must reproduce bitwise.
fn reference_run(iters: usize, world: usize) -> (Vec<f32>, Vec<f32>) {
    let mut net = Net::from_spec(&spec(8), Some(Box::new(Ramp))).unwrap();
    let team = ThreadTeam::new(1);
    let run = RunConfig {
        reduction: ReductionMode::Canonical { groups: world },
        ..RunConfig::default()
    };
    let mut solver = Solver::<f32>::new(SolverConfig::lenet());
    let losses = solver.train(&mut net, &team, &run, iters);
    (losses, flat_params(&net))
}

type Outcome = (
    Result<Vec<f32>, DistError>,
    Vec<f32>,
    Vec<Result<dist::WorkerReport, DistError>>,
);

/// Coordinator on this thread, `world` workers on their own threads, all
/// talking CGRP over loopback TCP — the process topology without the
/// process-spawn cost. `fail` injects `fail_after_steps` into one rank.
fn dist_run(iters: usize, world: usize, fail: Option<(usize, u64)>) -> Outcome {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let local_batch = 8 / world;
    let handles: Vec<_> = (0..world)
        .map(|rank| {
            let fail_after = fail.and_then(|(r, k)| (r == rank).then_some(k));
            std::thread::spawn(move || {
                let sharded = ShardedSource::new(Box::new(Ramp), rank, world, 8);
                let mut net = Net::from_spec(&spec(local_batch), Some(Box::new(sharded))).unwrap();
                let mut cfg = WorkerConfig::new(addr.to_string(), rank);
                cfg.io_timeout = Duration::from_secs(10);
                cfg.fail_after_steps = fail_after;
                run_worker(&mut net, &cfg)
            })
        })
        .collect();

    let mut net = Net::from_spec(&spec(8), Some(Box::new(Ramp))).unwrap();
    let mut solver = Solver::<f32>::new(SolverConfig::lenet());
    let cfg = CoordinatorConfig {
        dist: DistConfig {
            world,
            effective_batch: 8,
            num_samples: 16,
            iters,
            io_timeout: Duration::from_secs(10),
        },
        join_timeout: Duration::from_secs(10),
    };
    let result = run_coordinator(listener, &mut net, &mut solver, &cfg, |_, _, _, _| Ok(()));
    let reports = handles.into_iter().map(|h| h.join().unwrap()).collect();
    (result, flat_params(&net), reports)
}

#[test]
fn two_worker_run_is_bit_identical_to_single_process() {
    let (ref_losses, ref_params) = reference_run(5, 2);
    let (result, dist_params, reports) = dist_run(5, 2, None);
    let dist_losses = result.expect("distributed run failed");
    // Vec<f32> equality is bitwise for finite values — no tolerance.
    assert_eq!(ref_losses, dist_losses, "loss trajectory diverged");
    assert_eq!(ref_params, dist_params, "final parameters diverged");
    assert!(ref_losses.iter().all(|l| l.is_finite()));
    for (rank, r) in reports.into_iter().enumerate() {
        assert_eq!(r.unwrap().steps, 5, "rank {rank} step count");
    }
}

#[test]
fn four_worker_run_is_bit_identical_to_single_process() {
    let (ref_losses, ref_params) = reference_run(4, 4);
    let (result, dist_params, _reports) = dist_run(4, 4, None);
    assert_eq!(ref_losses, result.expect("distributed run failed"));
    assert_eq!(ref_params, dist_params);
}

#[test]
fn worker_death_is_typed_on_every_participant_and_bounded() {
    let t0 = Instant::now();
    // Rank 1 abandons the run mid-step after 2 completed steps — the
    // gradient is computed but never sent, leaving the coordinator at the
    // collection barrier (the worst place to lose a worker).
    let (result, _, reports) = dist_run(5, 2, Some((1, 2)));
    match result {
        Err(DistError::WorkerDied { rank, .. }) => assert_eq!(rank, 1),
        other => panic!("expected WorkerDied{{rank: 1}}, got {other:?}"),
    }
    // The survivor was told why (FRAME_DONE carrying the error), the dead
    // rank kept its own injected error — nobody hung, nobody panicked.
    assert!(
        matches!(reports[0], Err(DistError::Remote(_))),
        "rank 0 got {:?}",
        reports[0]
    );
    assert!(
        matches!(reports[1], Err(DistError::Io(_))),
        "rank 1 got {:?}",
        reports[1]
    );
    assert!(
        t0.elapsed() < Duration::from_secs(8),
        "teardown took {:?} — barrier not released",
        t0.elapsed()
    );
}
