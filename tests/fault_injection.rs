//! Fault-injection recovery tests: torn checkpoint writes, crashes inside
//! the commit window, corrupt files on disk, poisoned weights, and serve
//! replicas panicking mid-batch. Gated behind the `fault-inject` feature
//! because the injection registry is process-global state:
//!
//! ```text
//! cargo test --features fault-inject --test fault_injection
//! ```

#![cfg(feature = "fault-inject")]

mod common;

use cgdnn::checkpoint::{train_with_checkpoints, CheckpointDir, GuardConfig, TrainEvent};
use cgdnn::prelude::*;
use common::tiny_net;
use net::faults::{arm, disarm_all, FaultMode};
use std::path::PathBuf;
use std::sync::{Mutex, MutexGuard};

// The fault registry is process-global; these tests must not interleave.
static TEST_LOCK: Mutex<()> = Mutex::new(());

fn guard() -> MutexGuard<'static, ()> {
    let g = TEST_LOCK.lock().unwrap_or_else(|p| p.into_inner());
    disarm_all();
    g
}

fn tmp(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("cgdnn-fault-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

fn trainer() -> CoarseGrainTrainer<f32> {
    CoarseGrainTrainer::new(tiny_net(7), SolverConfig::lenet(), 2)
}

#[test]
fn torn_write_leaves_last_good_checkpoint_resumable() {
    let _g = guard();
    let dir = CheckpointDir::new(tmp("torn"));
    let mut t = trainer();
    t.train(2);
    dir.save(&t).unwrap();
    t.train(2);
    // The next write dies halfway through the temp file, before the rename.
    arm("checkpoint.partial", FaultMode::Error, 0);
    let e = dir.save(&t).unwrap_err();
    assert!(e.to_string().contains("injected"), "got: {e}");

    let mut fresh = trainer();
    let outcome = dir.resume_latest(&mut fresh).unwrap();
    assert_eq!(outcome.iteration, 2, "manifest still points at iteration 2");
    assert!(
        outcome.skipped.is_empty(),
        "no corrupt files were published"
    );
    let _ = std::fs::remove_dir_all(dir.path());
}

#[test]
fn crash_in_commit_window_resumes_from_previous_manifest() {
    let _g = guard();
    let dir = CheckpointDir::new(tmp("commit"));
    let mut t = trainer();
    t.train(2);
    dir.save(&t).unwrap();
    t.train(2);
    // Die after the checkpoint file is durable but before the manifest
    // update — the crash window the save ordering is designed around.
    arm("checkpoint.commit", FaultMode::Error, 0);
    assert!(dir.save(&t).is_err());

    let mut fresh = trainer();
    let outcome = dir.resume_latest(&mut fresh).unwrap();
    assert_eq!(outcome.iteration, 2, "unpublished checkpoint is invisible");

    // After the 'crash', a re-save publishes iteration 4 normally.
    dir.save(&t).unwrap();
    let mut fresh2 = trainer();
    assert_eq!(dir.resume_latest(&mut fresh2).unwrap().iteration, 4);
    let _ = std::fs::remove_dir_all(dir.path());
}

#[test]
fn truncated_newest_checkpoint_falls_back_with_a_warning() {
    let _g = guard();
    let dir = CheckpointDir::new(tmp("trunc"));
    let mut t = trainer();
    t.train(1);
    dir.save(&t).unwrap();
    t.train(1);
    let newest = dir.save(&t).unwrap();
    let bytes = std::fs::read(&newest).unwrap();
    std::fs::write(&newest, &bytes[..bytes.len() / 3]).unwrap();

    let mut fresh = trainer();
    let outcome = dir.resume_latest(&mut fresh).unwrap();
    assert_eq!(outcome.iteration, 1);
    assert_eq!(outcome.skipped.len(), 1);
    assert_eq!(outcome.skipped[0].0, newest);
    let _ = std::fs::remove_dir_all(dir.path());
}

#[test]
fn divergence_guard_rolls_back_poisoned_run_to_completion() {
    let _g = guard();
    let dir = CheckpointDir::new(tmp("poison"));
    let mut t = trainer();
    // Corrupt a weight to NaN right before the third step. The softmax
    // loss clamps the resulting NaN probabilities (Caffe's ln(0) guard),
    // so the symptom is a huge finite loss — the explosion test's job.
    // With checkpoints every 2 iterations the guard must roll back to 2,
    // drop the LR, and still finish all 8 iterations.
    arm("train.poison", FaultMode::Error, 2);
    let guard_cfg = GuardConfig {
        window: 2,
        factor: 4.0,
        ..GuardConfig::default()
    };
    let report = train_with_checkpoints(&mut t, 8, &dir, 2, Some(guard_cfg), |_, _| {}).unwrap();
    assert_eq!(report.rollbacks, 1);
    assert_eq!(report.losses.len(), 8, "realized trajectory is complete");
    assert!(
        report.losses.iter().all(|l| l.is_finite() && *l < 20.0),
        "the poisoned iteration was replaced by its replay: {:?}",
        report.losses
    );
    assert_eq!(t.solver().iteration(), 8);
    assert!(
        t.solver().lr_scale() < 1.0,
        "rollback must have dropped the LR"
    );
    let mut saw_divergence = false;
    let mut saw_rollback = false;
    for e in &report.events {
        match e {
            TrainEvent::Divergence { loss, .. } => {
                saw_divergence = true;
                assert!(*loss > 20.0, "poisoned loss was huge: {loss}");
            }
            TrainEvent::Rollback { to_iteration, .. } => {
                saw_rollback = true;
                assert_eq!(*to_iteration, 2);
            }
            TrainEvent::Checkpoint { .. } => {}
        }
    }
    assert!(saw_divergence && saw_rollback);
    let log = std::fs::read_to_string(dir.path().join("training.log")).unwrap();
    assert!(log.contains("divergence:") && log.contains("rollback:"));
    let _ = std::fs::remove_dir_all(dir.path());
}

#[test]
fn commit_window_crash_orphan_is_swept_by_the_next_save() {
    let _g = guard();
    let dir = CheckpointDir::new(tmp("orphan-sweep"));
    let mut t = trainer();
    t.train(2);
    dir.save(&t).unwrap();
    t.train(2);
    // Crash in the commit window: ckpt-00000004.cgdn is durable on disk,
    // but no manifest will ever point at it.
    arm("checkpoint.commit", FaultMode::Error, 0);
    assert!(dir.save(&t).is_err());
    let orphan = dir.path().join("ckpt-00000004.cgdn");
    assert!(orphan.exists(), "the crash left a durable unlisted file");

    // 'Restart': resume from the manifest (iteration 2), make different
    // progress so the orphan's name is never re-used, and save.
    let mut resumed = trainer();
    assert_eq!(dir.resume_latest(&mut resumed).unwrap().iteration, 2);
    resumed.train(1);
    dir.save(&resumed).unwrap();

    assert!(!orphan.exists(), "next save swept the orphan");
    // Every ckpt file on disk is manifest-listed, and vice versa.
    let listed: Vec<String> = dir
        .entries()
        .unwrap()
        .iter()
        .map(|p| p.file_name().unwrap().to_string_lossy().into_owned())
        .collect();
    let mut on_disk: Vec<String> = std::fs::read_dir(dir.path())
        .unwrap()
        .filter_map(|e| {
            let n = e.unwrap().file_name().to_string_lossy().into_owned();
            (n.starts_with("ckpt-") && n.ends_with(".cgdn")).then_some(n)
        })
        .collect();
    on_disk.sort();
    let mut listed_sorted = listed.clone();
    listed_sorted.sort();
    assert_eq!(
        on_disk, listed_sorted,
        "manifest is the sole source of truth"
    );
    let _ = std::fs::remove_dir_all(dir.path());
}

#[test]
fn supervisor_restores_killed_replica_with_bit_identical_outputs() {
    let _g = guard();
    let spec = NetSpec::parse(common::TINY_SPEC).unwrap();
    let factory = serve::EngineFactory::<f32>::new(
        &spec,
        &Shape::from([1usize, 12, 12]),
        &serve::EngineConfig {
            max_batch: 4,
            n_threads: 1,
        },
        None,
    )
    .unwrap();

    // Reference: a never-killed engine sharing the factory's weights.
    let mut reference = factory.build().unwrap();
    let samples: Vec<Vec<f32>> = (0..6).map(|i| vec![0.07 * (i + 1) as f32; 144]).collect();
    let expected: Vec<Vec<f32>> = samples
        .iter()
        .map(|s| reference.infer_one(s).unwrap())
        .collect();

    let server = serve::Server::start_supervised(
        factory,
        2,
        serve::BatchPolicy::default(),
        serve::SupervisorPolicy {
            poll: std::time::Duration::from_millis(1),
            ..serve::SupervisorPolicy::default()
        },
    )
    .unwrap();
    let metrics = server.metrics();
    assert_eq!(metrics.healthy_replicas(), 2);

    // Kill one replica mid-batch: the in-flight request errors, the
    // worker retires, and the gauge drops.
    arm("serve.worker", FaultMode::Panic, 0);
    let e = server.infer(&samples[0]).unwrap_err();
    assert!(matches!(e, serve::ServeError::Replica(_)), "got: {e}");

    // The supervisor notices within its poll interval and re-staffs.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
    while metrics.healthy_replicas() < 2 {
        assert!(
            std::time::Instant::now() < deadline,
            "supervisor did not restore healthy_replicas within 5 s"
        );
        std::thread::sleep(std::time::Duration::from_millis(2));
    }
    assert_eq!(metrics.replica_restarts(), 1);

    // Post-restart outputs are bit-identical to the never-killed
    // reference: the rebuilt engine adopted the same shared weight copy.
    for (s, want) in samples.iter().zip(&expected) {
        let got = server.infer(s).unwrap();
        assert_eq!(got.as_slice(), want.as_slice(), "bits differ after restart");
    }
    let report = server.shutdown();
    assert_eq!(report.healthy_replicas, 2);
    assert_eq!(report.replica_restarts, 1);
    assert!(report.csv().contains("replica_restarts,1\n"));
}

#[test]
fn serve_worker_panic_degrades_but_does_not_kill_the_server() {
    let _g = guard();
    let spec = NetSpec::parse(common::TINY_SPEC).unwrap();
    let engines = serve::engine::build_replicas::<f32>(
        &spec,
        &Shape::from([1usize, 12, 12]),
        &serve::EngineConfig {
            max_batch: 4,
            n_threads: 1,
        },
        2,
        None,
    )
    .unwrap();
    let server = serve::Server::start(engines, serve::BatchPolicy::default()).unwrap();
    let metrics = server.metrics();
    assert_eq!(metrics.healthy_replicas(), 2);

    // The first batch executed anywhere panics its replica mid-inference.
    arm("serve.worker", FaultMode::Panic, 0);
    let e = server.infer(&[0.3; 144]).unwrap_err();
    assert!(
        matches!(e, serve::ServeError::Replica(_)),
        "in-flight request gets an explicit error, not a hangup: {e}"
    );
    assert_eq!(metrics.healthy_replicas(), 1, "panicked replica retired");

    // The surviving replica keeps serving the queue.
    for i in 0..6 {
        let out = server.infer(&[0.1 * i as f32; 144]).unwrap();
        assert_eq!(out.len(), 10);
    }
    let report = server.shutdown();
    assert_eq!(report.healthy_replicas, 1);
    assert_eq!(report.replica_errors.iter().sum::<u64>(), 1);
    assert_eq!(report.completed, 6);
}
