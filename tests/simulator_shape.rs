//! The machine simulator must reproduce the *shape* of every figure in the
//! paper's evaluation: who wins, by roughly what factor, where the
//! crossovers fall. These assertions are the executable form of
//! EXPERIMENTS.md.

use datasets::{SyntheticCifar, SyntheticMnist};
use machine::report::{per_layer_speedups, total_time, NetworkSim};

fn mnist_sim() -> NetworkSim {
    let net = cgdnn::nets::lenet::<f32>(Box::new(SyntheticMnist::new(256, 1))).unwrap();
    NetworkSim::paper_machine(&net.profiles())
}

fn cifar_sim() -> NetworkSim {
    let net = cgdnn::nets::cifar10_full::<f32>(Box::new(SyntheticCifar::new(256, 1))).unwrap();
    NetworkSim::paper_machine(&net.profiles())
}

fn fwd(sp: &[(String, f64, f64)], name: &str) -> f64 {
    sp.iter().find(|s| s.0 == name).unwrap().1
}

// ---------------- Figure 4 ----------------

#[test]
fn fig4_conv_and_pool_dominate_mnist() {
    let sim = mnist_sim();
    for (i, times) in sim.cpu.iter().enumerate() {
        let total = total_time(times);
        let convpool: f64 = times
            .iter()
            .filter(|l| l.layer_type == "Convolution" || l.layer_type == "Pooling")
            .map(|l| l.total())
            .sum();
        let share = convpool / total;
        assert!(
            share > 0.55,
            "conv+pool share at {}T is {share:.2}, paper ~0.8",
            sim.thread_counts[i]
        );
    }
}

#[test]
fn fig4_conv2_is_the_heaviest_layer() {
    let sim = mnist_sim();
    let serial = sim.serial();
    let conv2 = serial.iter().find(|l| l.name == "conv2").unwrap().total();
    for l in serial {
        assert!(l.total() <= conv2, "{} heavier than conv2", l.name);
    }
}

// ---------------- Figure 5 ----------------

#[test]
fn fig5_u_shape_centre_layers_do_not_scale() {
    let sim = mnist_sim();
    let sp = per_layer_speedups(sim.serial(), sim.cpu_at(16).unwrap());
    // Centre of the network: tiny layers scale poorly (< 4x at 16T)...
    for name in ["relu1", "loss"] {
        assert!(
            fwd(&sp, name) < 4.0,
            "{name} should not scale: {:.2}",
            fwd(&sp, name)
        );
    }
    // ...while the flanks scale well (> 5x at 16T).
    for name in ["conv1", "conv2"] {
        assert!(
            fwd(&sp, name) > 5.0,
            "{name} should scale: {:.2}",
            fwd(&sp, name)
        );
    }
}

#[test]
fn fig5_ip1_and_pool2_saturate_around_8_threads() {
    let sim = mnist_sim();
    let sp8 = per_layer_speedups(sim.serial(), sim.cpu_at(8).unwrap());
    for name in ["ip1", "pool2"] {
        let s8 = fwd(&sp8, name);
        // Paper: 4.58 (ip1) and 5.52 (pool2) at 8 threads.
        assert!(
            (3.0..7.0).contains(&s8),
            "{name} @8T = {s8:.2}, paper ~4.6-5.5"
        );
    }
}

#[test]
fn fig5_conv1_lags_conv2_because_of_the_sequential_data_layer() {
    let sim = mnist_sim();
    let sp16 = per_layer_speedups(sim.serial(), sim.cpu_at(16).unwrap());
    assert!(fwd(&sp16, "conv1") < fwd(&sp16, "conv2"));
}

// ---------------- Figure 6 ----------------

#[test]
fn fig6_mnist_overall_speedups_in_paper_bands() {
    let sim = mnist_sim();
    let s8 = sim.cpu_speedup(8).unwrap();
    let s16 = sim.cpu_speedup(16).unwrap();
    assert!((4.5..7.5).contains(&s8), "MNIST @8T {s8:.2}, paper ~6");
    assert!((6.5..10.0).contains(&s16), "MNIST @16T {s16:.2}, paper ~8");
    assert!(s16 > s8);
    let plain = sim.gpu_plain_speedup();
    let cudnn = sim.gpu_cudnn_speedup();
    assert!(
        (1.0..4.5).contains(&plain),
        "plain-GPU {plain:.2}, paper ~2"
    );
    assert!((9.0..24.0).contains(&cudnn), "cuDNN {cudnn:.2}, paper ~12");
    // Ordering: plain-GPU < coarse-grain@16 < cuDNN (the paper's headline).
    assert!(plain < s16 && s16 < cudnn);
}

#[test]
fn fig6_gpu_per_layer_orderings() {
    let sim = mnist_sim();
    let plain = per_layer_speedups(sim.serial(), &sim.gpu_plain);
    let cudnn = per_layer_speedups(sim.serial(), &sim.gpu_cudnn);
    // Plain pooling is spectacular, plain conv is poor.
    assert!(fwd(&plain, "pool1") > 15.0);
    assert!(fwd(&plain, "conv1") < 3.0);
    // cuDNN lifts conv dramatically...
    assert!(fwd(&cudnn, "conv1") > 5.0 * fwd(&plain, "conv1"));
    // ...but drops pooling (paper: pool2 62x -> 27x).
    assert!(fwd(&cudnn, "pool2") < fwd(&plain, "pool2"));
}

// ---------------- Figure 7 ----------------

#[test]
fn fig7_conv_pool_norm_dominate_cifar() {
    let sim = cifar_sim();
    for (i, times) in sim.cpu.iter().enumerate() {
        let total = total_time(times);
        let dom: f64 = times
            .iter()
            .filter(|l| matches!(l.layer_type.as_str(), "Convolution" | "Pooling" | "LRN"))
            .map(|l| l.total())
            .sum();
        assert!(
            dom / total > 0.8,
            "dominant share at {}T = {:.2}, paper ~0.85",
            sim.thread_counts[i],
            dom / total
        );
    }
}

// ---------------- Figure 8 ----------------

#[test]
fn fig8_cifar_layer_anchors() {
    let sim = cifar_sim();
    let sp8 = per_layer_speedups(sim.serial(), sim.cpu_at(8).unwrap());
    let sp16 = per_layer_speedups(sim.serial(), sim.cpu_at(16).unwrap());
    // conv1 ~5.9 @8T (paper 5.87), then NUMA bites.
    assert!((4.0..7.5).contains(&fwd(&sp8, "conv1")));
    // pool1 keeps scaling to 16T (paper 11x).
    assert!(fwd(&sp16, "pool1") > fwd(&sp8, "pool1"));
    // norm1 changes the distribution; conv2 is capped below conv3.
    assert!(fwd(&sp16, "conv2") < fwd(&sp16, "conv3"));
}

// ---------------- Figure 9 ----------------

#[test]
fn fig9_cifar_overall_speedups_in_paper_bands() {
    let sim = cifar_sim();
    let s8 = sim.cpu_speedup(8).unwrap();
    let s16 = sim.cpu_speedup(16).unwrap();
    assert!((4.5..7.5).contains(&s8), "CIFAR @8T {s8:.2}, paper ~6");
    assert!(
        (7.0..11.0).contains(&s16),
        "CIFAR @16T {s16:.2}, paper 8.83"
    );
    let plain = sim.gpu_plain_speedup();
    let cudnn = sim.gpu_cudnn_speedup();
    assert!((3.0..8.0).contains(&plain), "plain {plain:.2}, paper ~6");
    assert!((18.0..34.0).contains(&cudnn), "cuDNN {cudnn:.2}, paper ~27");
    // CIFAR orderings: coarse-grain@16 beats plain-GPU (paper: 8.83 vs ~6);
    // cuDNN beats everything.
    assert!(plain < s16);
    assert!(cudnn > s16);
}

#[test]
fn fig9_cifar_gpu_per_layer_orderings() {
    let sim = cifar_sim();
    let plain = per_layer_speedups(sim.serial(), &sim.gpu_plain);
    let cudnn = per_layer_speedups(sim.serial(), &sim.gpu_cudnn);
    // Plain convs are the bottleneck (paper 1.8x-6x).
    for c in ["conv1", "conv2", "conv3"] {
        assert!(
            (1.0..10.0).contains(&fwd(&plain, c)),
            "{c}: {}",
            fwd(&plain, c)
        );
    }
    // LRN is strong on the GPU (paper ~40x).
    assert!(fwd(&plain, "norm1") > 20.0);
    // cuDNN drops small-map pooling (paper pool3 42x -> 11.75x).
    assert!(fwd(&cudnn, "pool3") < fwd(&plain, "pool3"));
}

// ---------------- cross-figure sanity ----------------

#[test]
fn speedups_monotone_in_threads_overall() {
    for sim in [mnist_sim(), cifar_sim()] {
        let mut prev = 0.0;
        for &t in &sim.thread_counts {
            let s = sim.cpu_speedup(t).unwrap();
            assert!(s >= prev * 0.98, "overall speedup dipped at {t}T");
            prev = s;
        }
    }
}

#[test]
fn serial_simulation_matches_serial_definition() {
    let sim = mnist_sim();
    assert!((sim.cpu_speedup(1).unwrap() - 1.0).abs() < 1e-12);
}

// ---------------- E13: coarse vs fine-grain CPU ----------------

#[test]
fn e13_coarse_grain_beats_fine_grain_on_mnist() {
    use machine::{simulate_cpu, simulate_cpu_fine_grain, CpuModel};
    let net = cgdnn::nets::lenet::<f32>(Box::new(SyntheticMnist::new(256, 1))).unwrap();
    let profiles = net.profiles();
    let model = CpuModel::xeon_e5_2667v2();
    let serial = total_time(&simulate_cpu(&profiles, &model, 1));
    let coarse16 = serial / total_time(&simulate_cpu(&profiles, &model, 16));
    let fine16 = serial / total_time(&simulate_cpu_fine_grain(&profiles, &model, 16));
    assert!(
        coarse16 > fine16,
        "batch-level ({coarse16:.2}x) must beat BLAS-level ({fine16:.2}x) on MNIST"
    );
    // Fine-grain's small-call layers must be its weak spot.
    let serial_l = simulate_cpu(&profiles, &model, 1);
    let fine_l = simulate_cpu_fine_grain(&profiles, &model, 16);
    let pool2_fine = serial_l[4].fwd / fine_l[4].fwd;
    assert!(pool2_fine < 2.0, "pool2 under fine-grain: {pool2_fine:.2}x");
}
