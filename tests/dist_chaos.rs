//! Network chaos harness for the distributed layer: a seeded storm of
//! injected faults — socket errors, wire corruption (CRC-breaking byte
//! flips), and delays — thrown at the dist frame paths and the worker step
//! loop of a live elastic run. The run must complete, and the loss
//! trajectory and final parameters must stay **bit-identical** to the
//! single-process reference: chaos may cost wall-clock and recovery
//! counters, never a single bit of the trajectory.
//!
//! Gated behind `fault-inject` because the injection registry is
//! process-global state:
//!
//! ```text
//! cargo test --features fault-inject --test dist_chaos
//! ```
//!
//! Kill faults (process exit) are exercised by the CI chaos smoke over
//! real processes; in-process they would take the whole test runner down.

#![cfg(feature = "fault-inject")]

use cgdnn::prelude::*;
use datasets::ShardedSource;
use dist::{
    run_coordinator_elastic, run_worker, CoordinatorConfig, DistConfig, DistError, ElasticHooks,
    RecoveryPolicy, WorkerConfig, WorkerReport,
};
use net::faults::{arm, disarm_all, FaultMode};
use std::net::TcpListener;
use std::sync::{Mutex, MutexGuard};
use std::time::Duration;

// The fault registry is process-global; these tests must not interleave.
static TEST_LOCK: Mutex<()> = Mutex::new(());

fn guard() -> MutexGuard<'static, ()> {
    let g = TEST_LOCK.lock().unwrap_or_else(|p| p.into_inner());
    disarm_all();
    g
}

fn spec(batch: usize) -> NetSpec {
    NetSpec::parse(&format!(
        r#"
name: micro
layer {{
  name: d
  type: Data
  batch: {batch}
  top: data
  top: label
}}
layer {{
  name: ip
  type: InnerProduct
  bottom: data
  top: ip
  num_output: 3
  seed: 17
}}
layer {{
  name: loss
  type: SoftmaxWithLoss
  bottom: ip
  bottom: label
  top: loss
}}
"#
    ))
    .unwrap()
}

struct Ramp;
impl BatchSource<f32> for Ramp {
    fn num_samples(&self) -> usize {
        16
    }
    fn sample_shape(&self) -> Shape {
        Shape::from([4usize])
    }
    fn fill(&self, index: usize, out: &mut [f32]) -> f32 {
        mmblas::set(0.1 * (index + 1) as f32, out);
        (index % 3) as f32
    }
}

fn flat_params(net: &Net<f32>) -> Vec<f32> {
    net.learnable_params()
        .iter()
        .flat_map(|p| p.data().iter().copied())
        .collect()
}

fn reference_run(iters: usize, world: usize) -> (Vec<f32>, Vec<f32>) {
    let mut net = Net::from_spec(&spec(8), Some(Box::new(Ramp))).unwrap();
    let team = ThreadTeam::new(1);
    let run = RunConfig {
        reduction: ReductionMode::Canonical { groups: world },
        ..RunConfig::default()
    };
    let mut solver = Solver::<f32>::new(SolverConfig::lenet());
    let losses = solver.train(&mut net, &team, &run, iters);
    (losses, flat_params(&net))
}

fn worker_net(rank: usize, world: usize) -> Net<f32> {
    let sharded = ShardedSource::new(Box::new(Ramp), rank, world, 8);
    Net::from_spec(&spec(8 / world), Some(Box::new(sharded))).unwrap()
}

/// Workers manage their own rejoins in these runs; the hooks only supply
/// shard nets for recompute.
struct RecomputeOnly {
    world: usize,
}

impl ElasticHooks for RecomputeOnly {
    fn shard_net(&mut self, rank: usize) -> Result<Net<f32>, DistError> {
        Ok(worker_net(rank, self.world))
    }
    fn respawn(&mut self, _rank: usize) -> Result<bool, DistError> {
        Ok(false)
    }
}

/// Elastic run under whatever faults are currently armed: workers carry a
/// self-rejoin budget, the coordinator recomputes whatever is dead, and a
/// small per-step delay leaves room for reconnects to land.
fn chaotic_run(iters: usize, world: usize) -> (Result<Vec<f32>, DistError>, Vec<f32>) {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let handles: Vec<_> = (0..world)
        .map(|rank| {
            std::thread::spawn(move || {
                let mut net = worker_net(rank, world);
                let mut cfg = WorkerConfig::new(addr.to_string(), rank);
                cfg.io_timeout = Duration::from_secs(10);
                cfg.max_rejoins = 6;
                run_worker(&mut net, &cfg)
            })
        })
        .collect();

    let mut net = Net::from_spec(&spec(8), Some(Box::new(Ramp))).unwrap();
    let mut solver = Solver::<f32>::new(SolverConfig::lenet());
    let cfg = CoordinatorConfig {
        dist: DistConfig {
            world,
            effective_batch: 8,
            num_samples: 16,
            iters,
            io_timeout: Duration::from_secs(10),
        },
        join_timeout: Duration::from_secs(10),
    };
    let policy = RecoveryPolicy {
        max_restarts: 32,
        restart_window: Duration::from_secs(120),
        degraded_ok: false,
    };
    let mut hooks = RecomputeOnly { world };
    let result = run_coordinator_elastic(
        listener,
        &mut net,
        &mut solver,
        &cfg,
        policy,
        &mut hooks,
        |_, _, _, _| {
            std::thread::sleep(Duration::from_millis(20));
            Ok(())
        },
    );
    // A worker that burned through its rejoin budget ends with a typed
    // error; the run is still expected to finish via recompute.
    let _reports: Vec<Result<WorkerReport, DistError>> =
        handles.into_iter().map(|h| h.join().unwrap()).collect();
    (result, flat_params(&net))
}

fn xorshift(s: &mut u64) -> u64 {
    *s ^= *s << 13;
    *s ^= *s >> 7;
    *s ^= *s << 17;
    *s
}

/// Arm `n` seeded faults across the dist chaos points. Skip counts start
/// past the join handshake (~4 frame sends/recvs for a 2-worker run) so a
/// fault never kills admission, which is deliberately fail-fast.
fn arm_storm(seed: u64, n: usize) {
    let points = [
        "dist.frame.send",
        "dist.frame.recv",
        "dist.worker.step.r0",
        "dist.worker.step.r1",
    ];
    let mut s = seed.max(1);
    for _ in 0..n {
        let point = points[(xorshift(&mut s) % points.len() as u64) as usize];
        let mode = match xorshift(&mut s) % 3 {
            0 => FaultMode::Error,
            1 => FaultMode::Delay(5 + xorshift(&mut s) % 20),
            _ => FaultMode::Corrupt,
        };
        let skip = 6 + (xorshift(&mut s) % 8) as u32;
        arm(point, mode, skip);
    }
}

#[test]
fn seeded_fault_storm_stays_bit_identical() {
    let _g = guard();
    let (ref_losses, ref_params) = reference_run(8, 2);
    for seed in [11u64, 42, 1977] {
        arm_storm(seed, 4);
        let (result, params) = chaotic_run(8, 2);
        disarm_all();
        let losses = result.unwrap_or_else(|e| panic!("seed {seed}: chaotic run failed: {e}"));
        assert_eq!(ref_losses, losses, "seed {seed}: loss trajectory diverged");
        assert_eq!(ref_params, params, "seed {seed}: final parameters diverged");
        assert!(losses.iter().all(|l| l.is_finite()));
    }
}

#[test]
fn wire_corruption_is_survived_and_counted() {
    let _g = guard();
    let (ref_losses, ref_params) = reference_run(6, 2);
    let reg = obs::registry::global();
    let deaths_before = reg.counter("dist.worker_deaths").get();
    let recoveries_before = reg.counter("dist.recoveries").get();
    // Corrupt one gradient frame on the wire mid-run: the coordinator must
    // see BadCrc, declare the rank dead, recompute, and stay bit-exact.
    arm("dist.frame.send", FaultMode::Corrupt, 8);
    let (result, params) = chaotic_run(6, 2);
    disarm_all();
    let losses = result.expect("corruption should be absorbed");
    assert_eq!(ref_losses, losses, "loss trajectory diverged");
    assert_eq!(ref_params, params, "final parameters diverged");
    assert!(
        reg.counter("dist.worker_deaths").get() > deaths_before,
        "the corrupted frame should have cost its sender the connection"
    );
    assert!(
        reg.counter("dist.recoveries").get() > recoveries_before,
        "the dead rank should have been recovered"
    );
}

#[test]
fn injected_step_error_triggers_recovery_and_rejoin() {
    let _g = guard();
    let (ref_losses, ref_params) = reference_run(6, 2);
    let reg = obs::registry::global();
    let recoveries_before = reg.counter("dist.recoveries").get();
    let rejoins_before = reg.counter("dist.worker_rejoins").get();
    // Rank 1's step loop errors once mid-run; the worker reconnects itself
    // through FRAME_REJOIN while the coordinator recomputes the gap.
    arm("dist.worker.step.r1", FaultMode::Error, 1);
    let (result, params) = chaotic_run(6, 2);
    disarm_all();
    let losses = result.expect("step error should be absorbed");
    assert_eq!(ref_losses, losses, "loss trajectory diverged");
    assert_eq!(ref_params, params, "final parameters diverged");
    assert!(
        reg.counter("dist.recoveries").get() > recoveries_before,
        "the lost step should have been recovered"
    );
    assert!(
        reg.counter("dist.worker_rejoins").get() > rejoins_before,
        "the worker should have rejoined itself"
    );
}
