//! Loopback integration of the wire front-end: outputs over TCP must be
//! bit-identical to in-process [`serve::Server::infer`], deadlines and
//! rejections must propagate as typed frames, and the whole path must
//! publish `rpc.*` metrics and trace spans.
//!
//! Bit-identity holds even under concurrent clients because each output
//! row of the batched GEMM is a dot product over that row's inputs alone —
//! batch composition cannot perturb another row's arithmetic.

use rpc::{RpcClient, RpcConfig, RpcError, RpcServer};
use serve::{BatchPolicy, EngineConfig, EngineFactory, Server};
use std::time::Duration;

const TRAIN: &str = r#"
name: t
layer {
  name: d
  type: Data
  batch: 4
  top: data
  top: label
}
layer {
  name: ip
  type: InnerProduct
  num_output: 3
  seed: 5
  bottom: data
  top: ip
}
layer {
  name: loss
  type: SoftmaxWithLoss
  bottom: ip
  bottom: label
  top: prob
}
"#;

fn start_stack(replicas: usize, policy: BatchPolicy) -> (Server<f32>, RpcServer, obs::Registry) {
    let spec = net::NetSpec::parse(TRAIN).unwrap();
    let factory = EngineFactory::<f32>::new(
        &spec,
        &blob::Shape::from(vec![6usize]),
        &EngineConfig {
            max_batch: 4,
            n_threads: 1,
        },
        None,
    )
    .unwrap();
    let server = Server::start(factory.build_n(replicas).unwrap(), policy).unwrap();
    let reg = obs::Registry::new();
    let rpc = RpcServer::start(
        "127.0.0.1:0",
        server.client(),
        server.output_len(),
        RpcConfig::default(),
        &reg,
    )
    .unwrap();
    (server, rpc, reg)
}

/// Deterministic distinct samples.
fn sample(i: usize) -> Vec<f32> {
    (0..6)
        .map(|j| ((i * 31 + j * 7) % 100) as f32 * 0.01 - 0.5)
        .collect()
}

fn bits(v: &[f32]) -> Vec<u32> {
    v.iter().map(|x| x.to_bits()).collect()
}

#[test]
fn wire_outputs_match_in_process_bit_for_bit() {
    let (server, rpc, _reg) = start_stack(1, BatchPolicy::default());
    let baselines: Vec<Vec<f32>> = (0..16)
        .map(|i| server.infer(&sample(i)).unwrap().to_vec())
        .collect();
    let mut client = RpcClient::connect(rpc.local_addr()).unwrap();
    assert_eq!(client.sample_len(), 6);
    assert_eq!(client.output_len(), 3);
    for (i, want) in baselines.iter().enumerate() {
        let got = client.infer(&sample(i)).unwrap();
        assert_eq!(
            bits(&got),
            bits(want),
            "wire output diverged from in-process for sample {i}"
        );
    }
    rpc.shutdown();
    server.shutdown();
}

#[test]
fn concurrent_wire_clients_stay_bit_identical() {
    let (server, rpc, reg) = start_stack(2, BatchPolicy::default());
    let addr = rpc.local_addr();
    // In-process baselines first; concurrency must not perturb a row.
    let baselines: Vec<Vec<u32>> = (0..20)
        .map(|i| bits(&server.infer(&sample(i)).unwrap()))
        .collect();
    std::thread::scope(|s| {
        for c in 0..4 {
            let baselines = &baselines;
            s.spawn(move || {
                let mut client = RpcClient::connect(addr).unwrap();
                // Each client walks the samples from its own offset, so
                // concurrent micro-batches mix different inputs.
                for k in 0..20 {
                    let i = (c * 5 + k) % 20;
                    let got = client.infer(&sample(i)).unwrap();
                    assert_eq!(bits(&got), baselines[i], "client {c}, sample {i}");
                }
            });
        }
    });
    assert_eq!(reg.counter("rpc.completed").get(), 80);
    assert_eq!(reg.counter("rpc.decode_errors").get(), 0);
    rpc.shutdown();
    server.shutdown();
}

#[test]
fn deadline_budget_propagates_and_times_out_over_the_wire() {
    // max_batch 4 with a lone request: the worker waits out the straggler
    // window, by which time a 1 us budget has long expired.
    let (server, rpc, reg) = start_stack(1, BatchPolicy::default());
    let mut client = RpcClient::connect(rpc.local_addr()).unwrap();
    let err = client.infer_with_budget(&sample(0), 1).unwrap_err();
    assert_eq!(err, RpcError::TimedOut);
    assert_eq!(reg.counter("rpc.timed_out").get(), 1);
    // A sane budget succeeds on the same connection.
    let out = client.infer_with_budget(&sample(0), 1_000_000).unwrap();
    assert_eq!(out.len(), 3);
    rpc.shutdown();
    server.shutdown();
}

#[test]
fn queue_pressure_rejections_propagate_over_the_wire() {
    // One replica, batch capacity 1, queue depth 1: eight closed-loop wire
    // clients guarantee admission-control rejections.
    let (server, rpc, reg) = start_stack(
        1,
        BatchPolicy {
            max_delay: Duration::from_micros(500),
            queue_depth: 1,
        },
    );
    let cfg = rpc::LoadConfig {
        clients: 8,
        requests: 400,
        deadline_us: 0,
        ..rpc::LoadConfig::default()
    };
    let samples: Vec<Vec<f32>> = (0..16).map(sample).collect();
    let report = rpc::load::run(rpc.local_addr(), &cfg, &samples).unwrap();
    assert!(report.completed > 0, "no request completed: {report}");
    assert!(
        report.rejected > 0,
        "queue_depth 1 under 8 clients produced no rejection: {report}"
    );
    assert_eq!(report.errors, 0, "{report}");
    assert_eq!(
        report.completed + report.rejected + report.timed_out,
        400,
        "{report}"
    );
    // The server-side counters tell the same story.
    assert_eq!(reg.counter("rpc.completed").get(), report.completed);
    assert_eq!(reg.counter("rpc.rejected").get(), report.rejected);
    rpc.shutdown();
    server.shutdown();
}

#[test]
fn live_stats_scrape_is_invisible_to_inflight_requests() {
    // `FRAME_STATS` answers from the process-global registry (where `cgdnn
    // serve` publishes), so this stack registers its metrics there too.
    let spec = net::NetSpec::parse(TRAIN).unwrap();
    let factory = EngineFactory::<f32>::new(
        &spec,
        &blob::Shape::from(vec![6usize]),
        &EngineConfig {
            max_batch: 4,
            n_threads: 1,
        },
        None,
    )
    .unwrap();
    let server = Server::start(factory.build_n(1).unwrap(), BatchPolicy::default()).unwrap();
    let rpc = RpcServer::start(
        "127.0.0.1:0",
        server.client(),
        server.output_len(),
        RpcConfig::default(),
        obs::registry::global(),
    )
    .unwrap();
    let addr = rpc.local_addr();
    let baselines: Vec<Vec<u32>> = (0..16)
        .map(|i| bits(&server.infer(&sample(i)).unwrap()))
        .collect();

    // Scrape the live registry repeatedly while an inference stream is in
    // flight on the same event loop: every response must stay bit-identical
    // to the in-process baseline, and every scrape must parse.
    std::thread::scope(|s| {
        let baselines = &baselines;
        let infer = s.spawn(move || {
            let mut client = RpcClient::connect(addr).unwrap();
            for round in 0..4 {
                for (i, want) in baselines.iter().enumerate() {
                    let got = client.infer(&sample(i)).unwrap();
                    assert_eq!(
                        &bits(&got),
                        want,
                        "round {round} sample {i} diverged under live stats scrape"
                    );
                }
            }
        });
        for _ in 0..8 {
            let snap = rpc::fetch_stats(addr, Duration::from_secs(10)).unwrap();
            assert!(!snap.is_empty(), "live snapshot carried no metrics");
        }
        infer.join().unwrap();
    });

    let snap = rpc::fetch_stats(addr, Duration::from_secs(10)).unwrap();
    match snap.get("rpc.frames_total") {
        Some(obs::MetricValue::Counter(n)) => {
            assert!(*n > 0, "event loop served frames but counted none")
        }
        other => panic!("rpc.frames_total missing or mistyped: {other:?}"),
    }
    // The JSON rendering of the scraped snapshot is strict JSON with the
    // scraped counter visible — what `cgdnn stats --connect --json` prints.
    let v = obs::json::parse(&snap.json()).expect("snapshot json parses");
    assert!(
        v.get("rpc.frames_total").and_then(|n| n.as_f64()).unwrap() > 0.0,
        "rpc.frames_total missing from JSON rendering"
    );
    rpc.shutdown();
    server.shutdown();
}

/// One raw frame exchange on an already-handshaken socket.
fn raw_exchange(s: &mut std::net::TcpStream, id: u64, payload_f32s: &[f32]) -> (u8, u64, Vec<u8>) {
    use rpc::proto;
    use std::io::{Read, Write};
    let mut payload = Vec::new();
    proto::write_f32s(&mut payload, payload_f32s);
    s.write_all(&proto::encode_header(
        proto::REQ_INFER,
        id,
        0,
        payload.len() as u32,
    ))
    .unwrap();
    s.write_all(&payload).unwrap();
    let mut head = [0u8; proto::FRAME_HEADER_LEN];
    s.read_exact(&mut head).unwrap();
    let h = proto::decode_header(&head).unwrap();
    let mut body = vec![0u8; h.payload_len as usize];
    s.read_exact(&mut body).unwrap();
    (h.kind, h.id, body)
}

#[test]
fn rpc_metrics_and_spans_cover_the_wire_path() {
    use rpc::proto;
    use std::io::{Read, Write};
    let (server, rpc, reg) = start_stack(1, BatchPolicy::default());
    obs::trace::set_enabled(true);
    let _ = obs::trace::take_events();

    let mut s = std::net::TcpStream::connect(rpc.local_addr()).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    let mut hello = [0u8; proto::SERVER_HELLO_LEN];
    s.read_exact(&mut hello).unwrap();
    proto::decode_server_hello(&hello).unwrap();
    s.write_all(&proto::encode_client_hello()).unwrap();

    let (kind, id, _) = raw_exchange(&mut s, 1, &sample(1));
    assert_eq!((kind, id), (proto::RESP_PROBS, 1));
    // A wrong-length infer payload is a decode error that must NOT kill
    // the connection (the CRC-verified header framed it correctly)...
    let (kind, id, _) = raw_exchange(&mut s, 2, &[1.0, 2.0, 3.0]);
    assert_eq!((kind, id), (proto::RESP_ERROR, 2));
    // ...so the same connection keeps serving.
    let (kind, id, _) = raw_exchange(&mut s, 3, &sample(2));
    assert_eq!((kind, id), (proto::RESP_PROBS, 3));
    drop(s);

    rpc.shutdown();
    server.shutdown();
    obs::trace::set_enabled(false);
    let events = obs::trace::take_events();
    let names: std::collections::BTreeSet<&str> = events.iter().map(|e| e.name.as_ref()).collect();
    assert!(names.contains("conn"), "no conn span in {names:?}");
    assert!(names.contains("frame"), "no frame span in {names:?}");
    assert!(events.iter().any(|e| e.cat == "rpc"));

    assert!(reg.counter("rpc.connections").get() >= 1);
    assert_eq!(reg.counter("rpc.completed").get(), 2);
    assert_eq!(reg.counter("rpc.decode_errors").get(), 1);
    assert!(reg.counter("rpc.frames_in").get() >= 3);
    assert!(reg.counter("rpc.frames_out").get() >= 3);
    assert!(reg.counter("rpc.bytes_in").get() > 0);
    assert!(reg.counter("rpc.bytes_out").get() > 0);
    assert_eq!(reg.counter("rpc.handler_panics").get(), 0);
}
