//! Evaluation-path tests: nets with an `Accuracy` layer, train/test phase
//! switching, and real learned accuracy on the synthetic MNIST classes.

mod common;

use cgdnn::prelude::*;
use common::TinySource;

/// Tiny MLP with both a loss and an accuracy head (via Split).
const EVAL_SPEC: &str = r#"
name: eval_net
layer {
  name: data
  type: Data
  batch: 16
  top: data
  top: label
}
layer {
  name: lsplit
  type: Split
  bottom: label
  top: label_a
  top: label_b
}
layer {
  name: ip1
  type: InnerProduct
  bottom: data
  top: ip1
  num_output: 48
  seed: 61
}
layer {
  name: relu1
  type: ReLU
  bottom: ip1
  top: relu1
}
layer {
  name: ip2
  type: InnerProduct
  bottom: relu1
  top: ip2
  num_output: 10
  seed: 62
}
layer {
  name: ssplit
  type: Split
  bottom: ip2
  top: scores_a
  top: scores_b
}
layer {
  name: loss
  type: SoftmaxWithLoss
  bottom: scores_a
  bottom: label_a
  top: loss
}
layer {
  name: accuracy
  type: Accuracy
  bottom: scores_b
  bottom: label_b
  top: accuracy
}
"#;

fn eval_net(seed: u64) -> Net<f32> {
    let spec = NetSpec::parse(EVAL_SPEC).unwrap();
    Net::from_spec(&spec, Some(Box::new(TinySource { n: 128, seed }))).unwrap()
}

#[test]
fn evaluate_reports_loss_and_accuracy() {
    let mut net = eval_net(4);
    let team = ThreadTeam::new(2);
    let run = RunConfig::default();
    let (loss, acc) = solvers::evaluate(&mut net, &team, &run, 2);
    assert!(loss.is_finite() && loss > 0.0);
    let acc = acc.expect("net has an accuracy blob");
    assert!((0.0..=1.0).contains(&acc));
}

#[test]
#[cfg_attr(debug_assertions, ignore = "heavy training loop; run with --release")]
fn accuracy_improves_with_training() {
    let mut net = eval_net(7);
    let team = ThreadTeam::new(2);
    let run = RunConfig::default();
    let (_, acc_before) = solvers::evaluate(&mut net, &team, &run, 4);
    let mut solver: Solver<f32> = Solver::new(SolverConfig {
        base_lr: 0.1,
        ..SolverConfig::lenet()
    });
    solver.train(&mut net, &team, &run, 60);
    let (_, acc_after) = solvers::evaluate(&mut net, &team, &run, 4);
    let (b, a) = (acc_before.unwrap(), acc_after.unwrap());
    assert!(
        a > b + 0.2,
        "accuracy should improve substantially: {b:.2} -> {a:.2}"
    );
    assert!(a > 0.5, "trained accuracy too low: {a:.2}");
}

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "full-size LeNet training; run with --release"
)]
fn lenet_learns_synthetic_mnist_to_high_accuracy() {
    // The full-size LeNet on the synthetic digit glyphs: after 40 batch-64
    // iterations it must classify well above chance (the quickstart example
    // reaches ~90%+).
    let mut trainer =
        CoarseGrainTrainer::<f32>::lenet(Box::new(SyntheticMnist::new(2048, 5)), 2).unwrap();
    trainer.train(40);
    // Count argmax hits over a few fresh batches.
    let mut correct = 0usize;
    let mut total = 0usize;
    for _ in 0..3 {
        trainer.evaluate(1);
        let net = trainer.net();
        let scores = net.blob("ip2").unwrap();
        let labels = net.blob("label").unwrap();
        for s in 0..scores.num() {
            let row = scores.sample_data(s);
            let pred = row
                .iter()
                .enumerate()
                .max_by(|x, y| x.1.partial_cmp(y.1).unwrap())
                .unwrap()
                .0;
            correct += usize::from(pred == labels.data()[s] as usize);
            total += 1;
        }
    }
    let acc = correct as f64 / total as f64;
    assert!(acc > 0.6, "LeNet reached only {acc:.2} accuracy");
}

#[test]
fn loss_and_accuracy_blobs_have_scalar_shape() {
    let mut net = eval_net(1);
    let team = ThreadTeam::new(1);
    net.forward(&team, &RunConfig::default());
    assert_eq!(net.blob("loss").unwrap().count(), 1);
    assert_eq!(net.blob("accuracy").unwrap().count(), 1);
}
