//! End-to-end coverage for the cifar10_quick preset (Caffe's second
//! standard CIFAR topology) — not a paper network, but it exercises the
//! conv/relu ordering variant (relu between conv and pool in level 1) and
//! the two-ip head.

use cgdnn::prelude::*;

#[test]
fn cifar_quick_trains_one_iteration() {
    let mut net = cgdnn::nets::cifar10_quick::<f32>(Box::new(SyntheticCifar::new(128, 2))).unwrap();
    let team = ThreadTeam::new(2);
    let run = RunConfig::default();
    let mut solver: Solver<f32> = Solver::new(SolverConfig::cifar());
    let loss = solver.step(&mut net, &team, &run);
    assert!(loss.is_finite());
    assert!(loss > 1.0 && loss < 4.0, "initial loss ~ln(10): {loss}");
}

#[test]
fn cifar_quick_profiles_cover_every_layer() {
    let net = cgdnn::nets::cifar10_quick::<f32>(Box::new(SyntheticCifar::new(128, 2))).unwrap();
    let profiles = net.profiles();
    assert_eq!(profiles.len(), net.num_layers());
    // Every non-data layer reports real forward work.
    for p in &profiles {
        if p.layer_type != "Data" {
            assert!(
                p.forward.total_flops() > 0.0 || p.forward.total_bytes() > 0.0,
                "{} reports no work",
                p.name
            );
        }
    }
    // And the simulator accepts them.
    let sim = machine::report::NetworkSim::paper_machine(&profiles);
    assert!(sim.cpu_speedup(16).unwrap() > 4.0);
}
