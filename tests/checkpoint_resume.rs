//! The checkpoint/resume invariant, end to end through the file system:
//!
//! `train(N)  ==  train(k); checkpoint; resume; train(N-k)`
//!
//! with **bit-identical** loss sequences — for k ∈ {1, 7}, N = 10, and
//! thread teams of 1 and 4, in both `f32` and `f64`. A v2 checkpoint
//! captures parameters, solver history, the iteration/LR position, and the
//! data cursor; nothing else in the trainer is stateful, so equality is
//! exact, not approximate.

mod common;

use cgdnn::prelude::*;
use common::{tiny_net, tiny_net_f64};
use std::path::PathBuf;

const N: usize = 10;

fn tmp(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("cgdnn-resume-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).unwrap();
    d
}

fn trainer_f32(threads: usize) -> CoarseGrainTrainer<f32> {
    CoarseGrainTrainer::new(tiny_net(55), SolverConfig::lenet(), threads)
}

fn trainer_f64(threads: usize) -> CoarseGrainTrainer<f64> {
    CoarseGrainTrainer::new(tiny_net_f64(55), SolverConfig::lenet(), threads)
}

#[test]
fn resume_is_bit_identical_f32() {
    let dir = tmp("f32");
    for threads in [1usize, 4] {
        let straight = trainer_f32(threads).train(N);
        for k in [1usize, 7] {
            let path = dir.join(format!("t{threads}-k{k}.cgdn"));
            let mut first = trainer_f32(threads);
            let mut losses = first.train(k);
            first.checkpoint(&path).unwrap();
            drop(first); // resume into a genuinely fresh process-like state

            let mut second = trainer_f32(threads);
            second.resume(&path).unwrap();
            assert_eq!(second.solver().iteration(), k as u64);
            losses.extend(second.train(N - k));
            assert_eq!(losses, straight, "threads={threads}, k={k}");
        }
    }
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn resume_is_bit_identical_f64() {
    let dir = tmp("f64");
    for threads in [1usize, 4] {
        let straight = trainer_f64(threads).train(N);
        for k in [1usize, 7] {
            let path = dir.join(format!("t{threads}-k{k}.cgdn"));
            let mut first = trainer_f64(threads);
            let mut losses = first.train(k);
            first.checkpoint(&path).unwrap();
            drop(first);

            let mut second = trainer_f64(threads);
            second.resume(&path).unwrap();
            losses.extend(second.train(N - k));
            assert_eq!(losses, straight, "threads={threads}, k={k}");
        }
    }
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn resume_across_thread_counts_under_canonical_reduction() {
    // Thread count is not training state: under the canonical reduction a
    // run checkpointed on 4 threads continues bit-exactly on 1 thread, and
    // the whole spliced trajectory equals the single-thread straight run.
    let dir = tmp("xthread");
    let canonical = ReductionMode::Canonical { groups: 16 };
    let straight = trainer_f32(1).with_reduction(canonical).train(N);

    let path = dir.join("four-thread.cgdn");
    let mut on_four = trainer_f32(4).with_reduction(canonical);
    let mut losses = on_four.train(7);
    on_four.checkpoint(&path).unwrap();
    drop(on_four);

    let mut on_one = trainer_f32(1).with_reduction(canonical);
    on_one.resume(&path).unwrap();
    losses.extend(on_one.train(N - 7));
    assert_eq!(losses, straight, "4-thread checkpoint resumed on 1 thread");
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn params_only_snapshot_is_rejected_for_resume() {
    // `--snapshot` files (params only) must not silently masquerade as
    // full checkpoints: resuming would restart momentum and the schedule.
    let dir = tmp("reject");
    let mut t = trainer_f32(1);
    t.train(2);
    let path = dir.join("params-only.cgdn");
    let mut buf = Vec::new();
    net::save_params(t.net(), &mut buf).unwrap();
    std::fs::write(&path, &buf).unwrap();
    let e = t.resume(&path).unwrap_err();
    assert_eq!(e.kind(), std::io::ErrorKind::InvalidData);
    assert!(e.to_string().contains("SOLV"), "got: {e}");
    let _ = std::fs::remove_dir_all(dir);
}
