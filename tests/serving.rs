//! End-to-end serving tests: the dynamic batcher must be semantically
//! invisible (batched answers identical to one-at-a-time forwards) and
//! overload must surface as explicit rejections, not unbounded queueing.

mod common;

use cgdnn::prelude::*;
use common::{TinySource, TINY_SPEC};
use serve::{BatchPolicy, Engine, EngineConfig, ServeError, Server};
use std::time::Duration;

fn trained_snapshot() -> Vec<u8> {
    let spec = NetSpec::parse(TINY_SPEC).unwrap();
    let mut net =
        Net::<f32>::from_spec(&spec, Some(Box::new(TinySource { n: 64, seed: 3 }))).unwrap();
    let team = ThreadTeam::new(2);
    let run = RunConfig {
        reduction: ReductionMode::Canonical { groups: 16 },
        ..RunConfig::default()
    };
    let mut solver: Solver<f32> = Solver::new(SolverConfig::lenet());
    solver.train(&mut net, &team, &run, 2);
    let mut buf = Vec::new();
    net::save_params(&net, &mut buf).unwrap();
    buf
}

fn request_samples(n: usize) -> Vec<Vec<f32>> {
    let src = TinySource { n: 64, seed: 21 };
    (0..n)
        .map(|i| {
            let mut s = vec![0.0f32; 144];
            src.fill(i, &mut s);
            s
        })
        .collect()
}

fn build_engines(n: usize, snapshot: &[u8]) -> Vec<Engine<f32>> {
    let spec = NetSpec::parse(TINY_SPEC).unwrap();
    serve::engine::build_replicas(
        &spec,
        &Shape::from([1usize, 12, 12]),
        &EngineConfig {
            max_batch: 8,
            n_threads: 2,
        },
        n,
        Some(snapshot),
    )
    .unwrap()
}

#[test]
fn batched_serving_matches_one_at_a_time_forwards() {
    let snap = trained_snapshot();
    let samples = request_samples(24);

    // Reference: every sample alone through a solo engine.
    let mut solo = build_engines(1, &snap).remove(0);
    let expected: Vec<Vec<f32>> = samples.iter().map(|s| solo.infer_one(s).unwrap()).collect();

    // Served: concurrent clients through the dynamic batcher over two
    // replicas, so samples land in arbitrary batch compositions.
    let server = Server::start(
        build_engines(2, &snap),
        BatchPolicy {
            max_delay: Duration::from_millis(5),
            queue_depth: 64,
        },
    )
    .unwrap();
    let handles: Vec<_> = samples
        .iter()
        .map(|s| {
            let client = server.client();
            let s = s.clone();
            std::thread::spawn(move || client.infer(&s).unwrap().to_vec())
        })
        .collect();
    let served: Vec<Vec<f32>> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    let report = server.shutdown();

    assert_eq!(report.completed, 24);
    for (i, (want, got)) in expected.iter().zip(&served).enumerate() {
        assert_eq!(want, got, "sample {i}: batched bits differ from solo run");
    }
    // The batcher actually batched (not 24 singleton batches) — with 24
    // concurrent clients and a 5 ms window this is deterministic enough.
    assert!(
        report.n_batches < 24,
        "expected some coalescing, got {} batches",
        report.n_batches
    );
}

#[test]
fn overload_is_rejected_not_queued_unboundedly() {
    let snap = trained_snapshot();
    let server = Server::start(
        build_engines(1, &snap),
        BatchPolicy {
            max_delay: Duration::from_millis(1),
            queue_depth: 2,
        },
    )
    .unwrap();
    let samples = request_samples(1);
    // Burst far past the queue bound from many threads at once.
    let handles: Vec<_> = (0..32)
        .map(|_| {
            let client = server.client();
            let s = samples[0].clone();
            std::thread::spawn(move || client.infer(&s))
        })
        .collect();
    let results: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    let report = server.shutdown();

    let rejected = results
        .iter()
        .filter(|r| matches!(r, Err(ServeError::Rejected)))
        .count() as u64;
    let ok = results.iter().filter(|r| r.is_ok()).count() as u64;
    assert_eq!(ok + rejected, 32, "only Ok or Rejected outcomes expected");
    assert_eq!(report.completed, ok);
    assert_eq!(report.rejected, rejected);
    assert!(
        rejected > 0,
        "a 2-deep queue under a 32-request burst must shed load"
    );
    assert!(
        report.max_queue_depth <= 2 + 32,
        "queue depth bounded by capacity plus in-flight race slack"
    );
}

#[test]
fn deadline_expiry_is_reported_per_request() {
    let snap = trained_snapshot();
    let server = Server::start(
        build_engines(1, &snap),
        BatchPolicy {
            max_delay: Duration::from_millis(1),
            queue_depth: 16,
        },
    )
    .unwrap();
    let s = request_samples(1).remove(0);
    // Generous deadline completes; already-expired deadline times out.
    let ok = server.infer_with_deadline(&s, std::time::Instant::now() + Duration::from_secs(30));
    assert!(ok.is_ok());
    let late = server.infer_with_deadline(&s, std::time::Instant::now() - Duration::from_millis(1));
    assert_eq!(late.unwrap_err(), ServeError::TimedOut);
    let report = server.shutdown();
    assert_eq!(report.completed, 1);
    assert_eq!(report.timed_out, 1);
}
