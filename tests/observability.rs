//! Cross-crate observability tests: tracing/profiling must not perturb
//! training (bit-identical trajectories with instrumentation off vs on),
//! the emitted Chrome trace must cover every layer pass and the omprt
//! ordered sections, and the metrics registry / timestamped training log
//! must see real training runs.

mod common;

use cgdnn::observe;
use cgdnn::prelude::*;
use common::tiny_net;
use datasets::ShardedSource;
use dist::{run_coordinator, run_worker, CoordinatorConfig, DistConfig, WorkerConfig};
use std::collections::BTreeSet;
use std::net::TcpListener;
use std::sync::{Mutex, MutexGuard, OnceLock};
use std::time::Duration;

/// Span collection is process-global state; every test that flips it (or
/// asserts on drained events) takes this lock so the assertions see only
/// their own run's spans.
fn obs_lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|p| p.into_inner())
}

/// Train the tiny net for `iters` iterations and return (losses, params).
/// With `observed`, tracing and per-layer profiling are both active.
fn train_run(threads: usize, iters: usize, observed: bool) -> (Vec<f32>, Vec<u8>) {
    if observed {
        obs::trace::set_enabled(true);
        let _ = obs::trace::take_events(); // discard other tests' leftovers
    }
    let mut t = CoarseGrainTrainer::new(tiny_net(5), SolverConfig::lenet(), threads);
    if observed {
        t.enable_profiling();
    }
    let losses = t.train(iters);
    if observed {
        obs::trace::set_enabled(false);
        let events = obs::trace::take_events();
        assert!(!events.is_empty(), "observed run produced no spans");
        let profile = t.profile().expect("profiling was enabled");
        assert_eq!(profile.iterations(), iters as u64);
    }
    let mut snap = Vec::new();
    net::save_params(t.net(), &mut snap).unwrap();
    (losses, snap)
}

#[test]
fn instrumentation_does_not_change_training() {
    // The tentpole's non-negotiable: turning on tracing + profiling must
    // leave the loss trajectory and the final parameters bit-identical,
    // at one thread and at four.
    let _g = obs_lock();
    for threads in [1usize, 4] {
        let (base_losses, base_snap) = train_run(threads, 4, false);
        let (obs_losses, obs_snap) = train_run(threads, 4, true);
        assert_eq!(
            base_losses, obs_losses,
            "tracing changed the loss trajectory at {threads} threads"
        );
        assert_eq!(
            base_snap, obs_snap,
            "tracing changed the final parameters at {threads} threads"
        );
    }
}

/// 16 deterministic samples of shape [4] — the same source
/// `tests/dist_training.rs` uses, duplicated here because integration test
/// binaries cannot share helpers without a common crate.
struct Ramp;
impl BatchSource<f32> for Ramp {
    fn num_samples(&self) -> usize {
        16
    }
    fn sample_shape(&self) -> Shape {
        Shape::from([4usize])
    }
    fn fill(&self, index: usize, out: &mut [f32]) -> f32 {
        mmblas::set(0.1 * (index + 1) as f32, out);
        (index % 3) as f32
    }
}

fn micro_spec(batch: usize) -> NetSpec {
    NetSpec::parse(&format!(
        r#"
name: micro
layer {{
  name: d
  type: Data
  batch: {batch}
  top: data
  top: label
}}
layer {{
  name: ip
  type: InnerProduct
  bottom: data
  top: ip
  num_output: 3
  seed: 17
}}
layer {{
  name: loss
  type: SoftmaxWithLoss
  bottom: ip
  bottom: label
  top: loss
}}
"#
    ))
    .unwrap()
}

/// Coordinator + 2 worker threads over loopback TCP, with tracing either
/// off or on for the whole run. Returns (losses, flat params).
fn dist_obs_run(iters: usize, observed: bool) -> (Vec<f32>, Vec<f32>) {
    const WORLD: usize = 2;
    if observed {
        obs::trace::set_enabled(true);
        let _ = obs::trace::take_events();
    }
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let handles: Vec<_> = (0..WORLD)
        .map(|rank| {
            std::thread::spawn(move || {
                let sharded = ShardedSource::new(Box::new(Ramp), rank, WORLD, 8);
                let mut net =
                    Net::from_spec(&micro_spec(8 / WORLD), Some(Box::new(sharded))).unwrap();
                let mut cfg = WorkerConfig::new(addr.to_string(), rank);
                cfg.io_timeout = Duration::from_secs(10);
                run_worker(&mut net, &cfg)
            })
        })
        .collect();
    let mut net = Net::from_spec(&micro_spec(8), Some(Box::new(Ramp))).unwrap();
    let mut solver = Solver::<f32>::new(SolverConfig::lenet());
    let cfg = CoordinatorConfig {
        dist: DistConfig {
            world: WORLD,
            effective_batch: 8,
            num_samples: 16,
            iters,
            io_timeout: Duration::from_secs(10),
        },
        join_timeout: Duration::from_secs(10),
    };
    let losses = run_coordinator(listener, &mut net, &mut solver, &cfg, |_, _, _, _| Ok(()))
        .expect("distributed run failed");
    for (rank, h) in handles.into_iter().enumerate() {
        h.join()
            .unwrap()
            .unwrap_or_else(|e| panic!("rank {rank}: {e}"));
    }
    if observed {
        obs::trace::set_enabled(false);
    }
    let params = net
        .learnable_params()
        .iter()
        .flat_map(|p| p.data().iter().copied())
        .collect();
    (losses, params)
}

#[test]
fn distributed_observability_is_invisible_and_aggregates_per_rank() {
    // The tentpole invariant extended to the distributed path: a full
    // coordinator + 2-worker run over real loopback TCP — stats flush,
    // trace flush, clock-offset handshake and all — must be bit-identical
    // with tracing off vs on.
    let _g = obs_lock();
    let (base_losses, base_params) = dist_obs_run(4, false);
    let (obs_losses, obs_params) = dist_obs_run(4, true);
    assert_eq!(
        base_losses, obs_losses,
        "tracing changed the distributed loss trajectory"
    );
    assert_eq!(
        base_params, obs_params,
        "tracing changed the distributed final parameters"
    );

    // Teardown aggregation ran: the coordinator's registry now holds
    // rank-prefixed rows merged from each worker's shipped delta.
    let csv = obs::registry::global().csv();
    for rank in 0..2 {
        assert!(
            csv.contains(&format!("r{rank}.dist.worker_steps,")),
            "no merged r{rank}.* rows in coordinator registry"
        );
    }

    // The observed run's merged trace (worker events arrived over
    // FRAME_TRACE and were injected coordinator-side) is a valid Chrome
    // trace. Per-rank pid separation is asserted in the CI smoke with real
    // spawned processes — in-process workers share the pid atomic.
    let events = obs::trace::take_events();
    assert!(!events.is_empty(), "observed dist run produced no spans");
    assert!(
        events.iter().any(|e| e.cat == "dist"),
        "no dist-category spans in merged trace"
    );
    let mut buf = Vec::new();
    obs::trace::write_chrome_trace(&mut buf, &events).unwrap();
    let text = std::str::from_utf8(&buf).unwrap();
    let summary = obs::json::validate_chrome_trace(text).expect("merged trace validates");
    assert_eq!(summary.events, events.len());
}

#[test]
fn trace_covers_every_layer_pass_and_ordered_sections() {
    let _g = obs_lock();
    obs::trace::set_enabled(true);
    let _ = obs::trace::take_events();
    // Two threads so the ordered gradient merge actually queues (at one
    // thread `run_ordered` never waits), default Ordered reduction.
    let mut t = CoarseGrainTrainer::new(tiny_net(7), SolverConfig::lenet(), 2);
    t.train(2);
    let layer_names: Vec<String> = t
        .net()
        .layer_names()
        .into_iter()
        .map(str::to_string)
        .collect();
    obs::trace::set_enabled(false);
    let events = obs::trace::take_events();

    let names: BTreeSet<&str> = events.iter().map(|e| e.name.as_ref()).collect();
    for layer in &layer_names {
        assert!(
            names.contains(format!("fwd:{layer}").as_str()),
            "missing forward span for layer '{layer}'"
        );
        if layer != "data" {
            assert!(
                names.contains(format!("bwd:{layer}").as_str()),
                "missing backward span for layer '{layer}'"
            );
        }
    }
    assert!(names.contains("region"), "no omprt region spans");
    assert!(
        names.contains("ordered_wait"),
        "no ordered-section wait spans at 2 threads"
    );
    assert!(
        names.contains("solver_update"),
        "no solver parameter-update spans"
    );
    assert!(names.contains("data_load"), "no data-loading spans");
    let tids: BTreeSet<u64> = events.iter().map(|e| e.tid).collect();
    assert!(
        tids.len() >= 2,
        "expected spans from >= 2 threads: {tids:?}"
    );

    // The serialized trace is well-formed Chrome trace_event JSON and the
    // validator agrees with the in-memory event set.
    let mut buf = Vec::new();
    obs::trace::write_chrome_trace(&mut buf, &events).unwrap();
    let text = std::str::from_utf8(&buf).unwrap();
    let summary = obs::json::validate_chrome_trace(text).expect("trace validates");
    assert_eq!(summary.events, events.len());
    assert!(summary.cats.contains("omprt"));
    assert!(summary.cats.contains("layer"));
    assert!(summary.cats.contains("solver"));
    assert!(summary.cats.contains("data"));
    assert_eq!(summary.tids.len(), tids.len());

    // The same events drive the measured imbalance report: every omprt
    // worker contributes region time.
    let imb = observe::measured_imbalance(&events).expect("region spans present");
    assert_eq!(imb.per_thread.len(), tids.len());
    assert!(imb.imbalance_factor >= 1.0);
}

#[test]
fn trainer_publishes_into_the_global_registry() {
    let _g = obs_lock();
    let reg = obs::registry::global();
    let before = reg.counter("train.iterations").get();
    let mut t = CoarseGrainTrainer::new(tiny_net(3), SolverConfig::lenet(), 1);
    let losses = t.train(3);
    assert!(reg.counter("train.iterations").get() >= before + 3);
    let last = reg.gauge("train.last_loss").get();
    assert_eq!(last as f32, *losses.last().unwrap());
    let csv = reg.csv();
    assert!(csv.starts_with("metric,value\n"));
    assert!(csv.contains("train.step_seconds_count,"));
    assert!(csv.contains("train.step_seconds_mean,"));
}

#[test]
fn profile_table_uses_the_papers_layout() {
    let _g = obs_lock();
    let mut t = CoarseGrainTrainer::new(tiny_net(11), SolverConfig::lenet(), 2).with_profiling();
    t.train(2);
    let profile = t.profile().unwrap();
    let table = profile.table();
    for col in [
        "layer", "fwd ms", "bwd ms", "total ms", "% total", "strategy",
    ] {
        assert!(
            table.contains(col),
            "table missing column '{col}':\n{table}"
        );
    }
    for layer in t.net().layer_names() {
        assert!(table.contains(layer), "table missing layer '{layer}'");
    }
    let csv = profile.csv();
    assert!(csv.starts_with("layer,fwd_ms,bwd_ms,total_ms,pct_total,strategy\n"));
    assert_eq!(csv.lines().count(), t.net().layer_names().len() + 1);
}

#[test]
fn logstamp_has_documented_format() {
    let s = obs::logstamp(42);
    let (ts, iter) = s.split_once(' ').expect("two fields");
    assert_eq!(iter, "iter=42");
    let secs_millis = ts.strip_prefix("ts=").expect("ts= prefix");
    let (secs, millis) = secs_millis.split_once('.').expect("secs.millis");
    assert!(!secs.is_empty() && secs.bytes().all(|b| b.is_ascii_digit()));
    assert_eq!(millis.len(), 3);
    assert!(millis.bytes().all(|b| b.is_ascii_digit()));
}

#[test]
fn training_log_lines_are_timestamped() {
    let _g = obs_lock();
    let dir_path = std::env::temp_dir().join(format!("cgdnn-obslog-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir_path);
    let dir = CheckpointDir::new(&dir_path).with_keep(2);
    let mut t = CoarseGrainTrainer::new(tiny_net(13), SolverConfig::lenet(), 1);
    train_with_checkpoints(&mut t, 4, &dir, 2, None, |_, _| {}).unwrap();
    let log = std::fs::read_to_string(dir_path.join("training.log")).unwrap();
    assert!(!log.trim().is_empty(), "no training.log lines");
    for line in log.lines() {
        assert!(line.starts_with("ts="), "line not timestamped: {line}");
        assert!(line.contains(" iter="), "line has no iteration: {line}");
        // The event body survives after the prefix (greppable as before).
        assert!(line.contains("checkpoint:"), "unexpected event: {line}");
    }
    let _ = std::fs::remove_dir_all(&dir_path);
}
