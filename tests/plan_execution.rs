//! End-to-end tests for the per-layer parallelism planner: strategy search
//! on a batch-starved net, `.plan` artifact round-trips, stale-plan
//! rejection with typed errors, and the execution guarantee — applying any
//! valid plan leaves forward outputs and training trajectories bit-identical
//! to batch-only execution.

mod common;

use cgdnn::plan::{self, Plan, PlanError};
use cgdnn::prelude::*;
use layers::LayerStrategy;
use machine::CpuModel;

use common::tiny_net;

/// A deterministic mixed assignment: for every layer prefer a dimension
/// split (channel/output) if its executable space has one, otherwise
/// replicate odd-indexed layers, otherwise sample-split. This exercises
/// every strategy kind the net supports in a single plan.
fn mixed_strategies(net: &Net<f32>) -> Vec<LayerStrategy> {
    net.layer_strategy_spaces()
        .iter()
        .enumerate()
        .map(|(i, space)| {
            let split = space.iter().rev().find(|s| {
                matches!(
                    s,
                    LayerStrategy::ChannelSplit { .. } | LayerStrategy::OutputSplit { .. }
                )
            });
            if let Some(&s) = split {
                s
            } else if i % 2 == 1 && space.contains(&LayerStrategy::Replicate) {
                LayerStrategy::Replicate
            } else {
                LayerStrategy::SampleSplit
            }
        })
        .collect()
}

#[test]
fn search_picks_a_split_for_a_batch_starved_net() {
    // Batch 8 on a 128-core node: sample-splitting alone leaves 120 cores
    // idle, so the search must move at least one layer off SampleSplit and
    // project a strictly better step time.
    let net = tiny_net(5);
    let model = CpuModel::scaled_node(8, 16);
    let result = plan::search(
        &net.profiles(),
        &net.layer_strategy_spaces(),
        &model,
        128,
        4,
    );
    assert!(
        result.non_sample_layers() > 0,
        "batch-starved net must pick at least one non-sample strategy"
    );
    assert!(
        result.planned_secs < result.batch_only_secs,
        "planned {} must beat batch-only {}",
        result.planned_secs,
        result.batch_only_secs
    );
    assert!(result.projected_speedup() > 1.0);
}

#[test]
fn search_never_projects_worse_than_batch_only() {
    // On a small node with a healthy batch the search may keep everything
    // sample-split — but it must never project a slowdown, because
    // SampleSplit is always in the candidate space.
    let net = tiny_net(5);
    let model = CpuModel::xeon_e5_2667v2();
    for threads in [1, 4, 12] {
        let r = plan::search(
            &net.profiles(),
            &net.layer_strategy_spaces(),
            &model,
            threads,
            2,
        );
        assert!(
            r.planned_secs <= r.batch_only_secs,
            "threads={threads}: planned {} > batch-only {}",
            r.planned_secs,
            r.batch_only_secs
        );
    }
}

#[test]
fn plan_artifact_round_trips_through_emit_and_parse() {
    let net = tiny_net(5);
    let strategies = mixed_strategies(&net);
    let p = plan::plan_for_net(&net, &strategies, 128, "scaled:8x16");
    let text = p.emit();
    let back = Plan::parse(&text).expect("emitted plan parses");
    assert_eq!(back, p);
    assert!(back.non_sample_layers() > 0);
}

#[test]
fn corrupted_and_malformed_plans_fail_with_typed_errors() {
    let net = tiny_net(5);
    let p = plan::plan_for_net(&net, &mixed_strategies(&net), 8, "xeon");
    let text = p.emit();

    // Flip one byte of the net name — still parseable, so only the CRC
    // trailer can catch it.
    let corrupted = text.replacen("net tiny_lenet", "net tinY_lenet", 1);
    assert_ne!(corrupted, text, "corruption must actually hit a byte");
    assert!(matches!(
        Plan::parse(&corrupted),
        Err(PlanError::Crc { .. })
    ));

    // Future format version: typed rejection, not a parse panic.
    let vers = text.replacen("CGPLAN v1", "CGPLAN v9", 1);
    assert!(matches!(Plan::parse(&vers), Err(PlanError::Version { .. })));

    // Truncation mid-line is a parse error with a line number.
    let cut = &text[..text.len() / 2];
    match Plan::parse(cut) {
        Err(PlanError::Parse { line, .. }) => assert!(line > 0),
        Err(PlanError::Crc { .. }) => {} // cut exactly between lines
        other => panic!("want Parse or Crc error, got {other:?}"),
    }
}

#[test]
fn stale_plans_are_rejected_with_the_layer_named() {
    let net = tiny_net(5);
    let good = plan::plan_for_net(&net, &mixed_strategies(&net), 8, "xeon");

    // A layer the net no longer has.
    let mut renamed = good.clone();
    renamed.entries[1].name = "conv_gone".to_string();
    let mut target = tiny_net(5);
    match plan::apply_to_net(&renamed, &mut target) {
        Err(PlanError::UnknownLayer { layer }) => assert_eq!(layer, "conv_gone"),
        other => panic!("want UnknownLayer, got {other:?}"),
    }

    // A layer whose split extent changed since planning time.
    let mut resized = good.clone();
    let idx = resized
        .entries
        .iter()
        .position(|e| e.extent > 0)
        .expect("some layer has a split extent");
    resized.entries[idx].extent += 1;
    let mut target = tiny_net(5);
    match plan::apply_to_net(&resized, &mut target) {
        Err(PlanError::LayerMismatch { layer, field, .. }) => {
            assert_eq!(layer, resized.entries[idx].name);
            assert_eq!(field, "extent");
        }
        other => panic!("want LayerMismatch, got {other:?}"),
    }
    let msg = plan::apply_to_net(&resized, &mut tiny_net(5))
        .unwrap_err()
        .to_string();
    assert!(
        msg.contains("stale"),
        "error should say the plan is stale: {msg}"
    );

    // A strategy outside the layer's executable space.
    let mut unsupported = good.clone();
    unsupported.entries[idx].strategy = LayerStrategy::ChannelSplit { ways: 7919 };
    let mut target = tiny_net(5);
    match plan::apply_to_net(&unsupported, &mut target) {
        Err(PlanError::Unsupported { layer, .. }) => {
            assert_eq!(layer, unsupported.entries[idx].name);
        }
        other => panic!("want Unsupported, got {other:?}"),
    }

    // Validation is atomic: the failed applies must not have touched any
    // layer's strategy.
    assert!(target
        .layer_strategies()
        .iter()
        .all(|s| *s == LayerStrategy::SampleSplit));
}

#[test]
fn planned_forward_is_bit_identical_to_batch_only() {
    let strategies = mixed_strategies(&tiny_net(5));
    for threads in [1usize, 2, 3, 4] {
        let team = ThreadTeam::new(threads);
        let run = RunConfig::default();

        let mut base = tiny_net(5);
        let loss_base = base.forward(&team, &run);

        let mut planned = tiny_net(5);
        let p = plan::plan_for_net(&planned, &strategies, threads, "test");
        plan::apply_to_net(&p, &mut planned).expect("fresh plan applies");
        assert!(p.non_sample_layers() > 0, "plan must actually split layers");
        let loss_planned = planned.forward(&team, &run);

        assert_eq!(
            loss_base.to_bits(),
            loss_planned.to_bits(),
            "threads={threads}: planned loss differs"
        );
        for name in base.output_names() {
            let a = base.blob(name).unwrap().data();
            let b = planned.blob(name).unwrap().data();
            assert_eq!(a.len(), b.len());
            for (i, (x, y)) in a.iter().zip(b).enumerate() {
                assert_eq!(
                    x.to_bits(),
                    y.to_bits(),
                    "threads={threads}: blob {name}[{i}] differs"
                );
            }
        }
    }
}

#[test]
fn fixed_plan_training_is_deterministic_and_matches_no_plan() {
    let strategies = mixed_strategies(&tiny_net(5));
    let train = |threads: usize, with_plan: bool| -> Vec<f32> {
        let mut net = tiny_net(5);
        if with_plan {
            let p = plan::plan_for_net(&net, &strategies, threads, "test");
            plan::apply_to_net(&p, &mut net).expect("fresh plan applies");
        }
        let team = ThreadTeam::new(threads);
        let run = RunConfig {
            reduction: ReductionMode::Canonical { groups: 16 },
            ..RunConfig::default()
        };
        let mut solver: Solver<f32> = Solver::new(SolverConfig::lenet());
        solver.train(&mut net, &team, &run, 3)
    };

    let reference = train(1, false);
    for threads in [1usize, 2, 4] {
        let planned = train(threads, true);
        assert_eq!(
            reference, planned,
            "threads={threads}: fixed plan changed the loss trajectory"
        );
    }
    // And re-running the same plan reproduces itself exactly.
    assert_eq!(train(2, true), train(2, true));
}
