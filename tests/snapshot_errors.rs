//! Snapshot error paths at the integration level: the serving tier trusts
//! `load_params` to reject malformed files loudly, so every corruption
//! class gets a test — truncation, bad magic, wrong version, CRC damage —
//! plus the `f32`/`f64` round-trips (values travel as `f64`, so no
//! precision is lost) and v1 backward compatibility.

mod common;

use cgdnn::prelude::*;
use common::{tiny_net, tiny_net_f64};

fn snapshot_bytes() -> Vec<u8> {
    let net = tiny_net(13);
    let mut buf = Vec::new();
    net::save_params(&net, &mut buf).unwrap();
    buf
}

fn v1_snapshot_bytes() -> Vec<u8> {
    let net = tiny_net(13);
    let mut buf = Vec::new();
    net::snapshot::save_params_v1(&net, &mut buf).unwrap();
    buf
}

#[test]
fn f32_round_trip_is_bit_exact() {
    let src = tiny_net(13);
    let buf = snapshot_bytes();
    let mut dst = tiny_net(99); // different init, same shapes
    net::load_params(&mut dst, buf.as_slice()).unwrap();
    for (a, b) in src.learnable_params().iter().zip(dst.learnable_params()) {
        assert_eq!(a.shape().dims(), b.shape().dims());
        assert_eq!(
            a.data(),
            b.data(),
            "f64 storage must round-trip f32 exactly"
        );
    }
}

#[test]
fn f64_round_trip_is_bit_exact() {
    let src = tiny_net_f64(13);
    let mut buf = Vec::new();
    net::save_params(&src, &mut buf).unwrap();
    let mut dst = tiny_net_f64(99);
    net::load_params(&mut dst, buf.as_slice()).unwrap();
    for (a, b) in src.learnable_params().iter().zip(dst.learnable_params()) {
        assert_eq!(a.data(), b.data(), "f64 values must round-trip exactly");
    }
}

#[test]
fn v1_snapshot_still_loads() {
    let src = tiny_net(13);
    let buf = v1_snapshot_bytes();
    let mut dst = tiny_net(99);
    net::load_params(&mut dst, buf.as_slice()).unwrap();
    for (a, b) in src.learnable_params().iter().zip(dst.learnable_params()) {
        assert_eq!(a.data(), b.data(), "v1 files must keep loading bit-exact");
    }
}

#[test]
fn truncated_snapshot_is_rejected_at_any_cut() {
    let buf = snapshot_bytes();
    // Cut in the header, in a section header, mid-payload, and inside the
    // CRC trailer.
    for cut in [0, 2, 7, 11, buf.len() / 2, buf.len() - 1] {
        let mut net = tiny_net(13);
        let e = net::load_params(&mut net, &buf[..cut]).unwrap_err();
        assert_eq!(
            e.kind(),
            std::io::ErrorKind::InvalidData,
            "truncation at {cut} bytes must be clean InvalidData, got {e}"
        );
    }
}

#[test]
fn bad_magic_is_rejected() {
    let mut buf = snapshot_bytes();
    buf[0..4].copy_from_slice(b"NOPE");
    let mut net = tiny_net(13);
    let e = net::load_params(&mut net, buf.as_slice()).unwrap_err();
    assert!(e.to_string().contains("magic"), "got: {e}");
}

#[test]
fn wrong_version_is_rejected() {
    let mut buf = snapshot_bytes();
    // Version field sits right after the 4-byte magic, little-endian u32.
    buf[4..8].copy_from_slice(&99u32.to_le_bytes());
    let mut net = tiny_net(13);
    let e = net::load_params(&mut net, buf.as_slice()).unwrap_err();
    assert!(e.to_string().contains("version"), "got: {e}");
}

#[test]
fn mid_file_corruption_fails_the_crc() {
    let mut buf = snapshot_bytes();
    let mid = buf.len() / 2;
    buf[mid] ^= 0x01; // single bit flip deep in the payload
    let mut net = tiny_net(13);
    let e = net::load_params(&mut net, buf.as_slice()).unwrap_err();
    assert_eq!(e.kind(), std::io::ErrorKind::InvalidData);
    assert!(e.to_string().contains("crc"), "got: {e}");
}

#[test]
fn trailing_garbage_v1_tolerated_v2_rejected() {
    // v1 had no trailer: the reader consumes exactly what the header
    // promises, so a concatenated file still loads.
    let mut v1 = v1_snapshot_bytes();
    v1.extend_from_slice(&[0xAB; 16]);
    let mut net = tiny_net(13);
    net::load_params(&mut net, v1.as_slice()).unwrap();
    // v2 is CRC-framed: anything after the trailer is corruption.
    let mut v2 = snapshot_bytes();
    v2.extend_from_slice(&[0xAB; 16]);
    assert!(net::load_params(&mut net, v2.as_slice()).is_err());
    // And a lying v1 blob count fails too.
    let mut lying = v1_snapshot_bytes();
    lying[8..12].copy_from_slice(&1u32.to_le_bytes());
    assert!(net::load_params(&mut net, lying.as_slice()).is_err());
}

#[test]
fn serving_engine_propagates_snapshot_errors() {
    // The serve tier wraps io errors in ServeError::Weights.
    let spec = NetSpec::parse(common::TINY_SPEC).unwrap();
    let mut engine = serve::Engine::<f32>::build(
        &spec,
        &Shape::from([1usize, 12, 12]),
        &serve::EngineConfig {
            max_batch: 4,
            n_threads: 1,
        },
    )
    .unwrap();
    let e = engine.load_weights(&b"XXXX"[..]).unwrap_err();
    assert!(matches!(e, serve::ServeError::Weights(_)));
    // A valid v2 snapshot for the same architecture loads fine, and so
    // does a v1 one.
    engine.load_weights(snapshot_bytes().as_slice()).unwrap();
    engine.load_weights(v1_snapshot_bytes().as_slice()).unwrap();
}
