//! Snapshot error paths at the integration level: the serving tier trusts
//! `load_params` to reject malformed files loudly, so every corruption
//! class gets a test — truncation, bad magic, wrong version — plus the
//! `f32` round-trip (values travel as `f64`, so no precision is lost).

mod common;

use cgdnn::prelude::*;
use common::tiny_net;

fn snapshot_bytes() -> Vec<u8> {
    let net = tiny_net(13);
    let mut buf = Vec::new();
    net::save_params(&net, &mut buf).unwrap();
    buf
}

#[test]
fn f32_round_trip_is_bit_exact() {
    let src = tiny_net(13);
    let buf = snapshot_bytes();
    let mut dst = tiny_net(99); // different init, same shapes
    net::load_params(&mut dst, buf.as_slice()).unwrap();
    for (a, b) in src.learnable_params().iter().zip(dst.learnable_params()) {
        assert_eq!(a.shape().dims(), b.shape().dims());
        assert_eq!(
            a.data(),
            b.data(),
            "f64 storage must round-trip f32 exactly"
        );
    }
}

#[test]
fn truncated_snapshot_is_rejected_at_any_cut() {
    let buf = snapshot_bytes();
    // Cut in the header, in a shape record, and mid-values.
    for cut in [0, 2, 7, 11, buf.len() / 2, buf.len() - 1] {
        let mut net = tiny_net(13);
        assert!(
            net::load_params(&mut net, &buf[..cut]).is_err(),
            "truncation at {cut} bytes must fail"
        );
    }
}

#[test]
fn bad_magic_is_rejected() {
    let mut buf = snapshot_bytes();
    buf[0..4].copy_from_slice(b"NOPE");
    let mut net = tiny_net(13);
    let e = net::load_params(&mut net, buf.as_slice()).unwrap_err();
    assert!(e.to_string().contains("magic"), "got: {e}");
}

#[test]
fn wrong_version_is_rejected() {
    let mut buf = snapshot_bytes();
    // Version field sits right after the 4-byte magic, little-endian u32.
    buf[4..8].copy_from_slice(&2u32.to_le_bytes());
    let mut net = tiny_net(13);
    let e = net::load_params(&mut net, buf.as_slice()).unwrap_err();
    assert!(e.to_string().contains("version"), "got: {e}");
}

#[test]
fn trailing_garbage_is_tolerated_but_short_blob_count_is_not() {
    // The reader consumes exactly what the header promises; extra trailing
    // bytes (e.g. a concatenated file) do not corrupt the load.
    let mut buf = snapshot_bytes();
    let clean = buf.clone();
    buf.extend_from_slice(&[0xAB; 16]);
    let mut net = tiny_net(13);
    net::load_params(&mut net, buf.as_slice()).unwrap();
    // But a lying blob count fails.
    let mut lying = clean;
    lying[8..12].copy_from_slice(&1u32.to_le_bytes());
    assert!(net::load_params(&mut net, lying.as_slice()).is_err());
}

#[test]
fn serving_engine_propagates_snapshot_errors() {
    // The serve tier wraps io errors in ServeError::Weights.
    let spec = NetSpec::parse(common::TINY_SPEC).unwrap();
    let mut engine = serve::Engine::<f32>::build(
        &spec,
        &Shape::from([1usize, 12, 12]),
        &serve::EngineConfig {
            max_batch: 4,
            n_threads: 1,
        },
    )
    .unwrap();
    let e = engine.load_weights(&b"XXXX"[..]).unwrap_err();
    assert!(matches!(e, serve::ServeError::Weights(_)));
    // A valid snapshot for the same architecture loads fine.
    engine.load_weights(snapshot_bytes().as_slice()).unwrap();
}
